"""Unit tests for the vectorized bit-level datapath engine."""

import numpy as np
import pytest

from repro.arith.accumulator import int_window_to_float, sequential_windowed_sum
from repro.gemm.tiled import TiledGEMM, mxu_cgemm, mxu_sgemm
from repro.mxu.bitlevel import (
    BitAccumulator,
    _round_int_scaled_to_fp32,
    bit_level_fp32_dot,
    bit_level_fp32c_dot,
    split_fp32_bits,
)
from repro.mxu.m3xu import M3XU
from repro.mxu.modes import MXUMode
from repro.mxu.vectorized import (
    BITLEVEL_ENV,
    BitLevelMXU,
    ProductFault,
    fp32_bit_fields,
    product_slot_count,
    resolve_bitlevel_engine,
    scalar_mma_fp32,
    scalar_mma_fp32c,
    split_fp32_fields,
    vector_mma_fp32,
    vector_mma_fp32c,
)
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex
from repro.types.rounding import RoundingMode


def biteq(x, y) -> bool:
    x, y = np.asarray(x), np.asarray(y)
    return x.shape == y.shape and x.dtype == y.dtype and x.tobytes() == y.tobytes()


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def random_fp32(rng, shape, scale_span=0):
    x = rng.standard_normal(shape)
    if scale_span:
        x = x * 10.0 ** rng.integers(-scale_span, scale_span, shape)
    return quantize(x, FP32)


class TestSequentialWindowedSum:
    """The vectorized accumulator replicates BitAccumulator exactly."""

    def check(self, signs, sigs, lsbs, acc_bits=48, mode=RoundingMode.NEAREST_EVEN):
        acc = BitAccumulator(width=acc_bits, mode=mode)
        for s, sig, e in zip(signs, sigs, lsbs):
            acc.add(int(s), int(sig), int(e))
        value, window_lsb = sequential_windowed_sum(
            np.array(signs), np.array(sigs), np.array(lsbs),
            acc_bits=acc_bits, mode=mode,
        )
        assert int(value) == acc.value
        if acc.anchor is not None:
            assert int(window_lsb) == acc.anchor - acc_bits + 1
        got = int_window_to_float(value, window_lsb, FP32)
        assert biteq(got, np.float64(acc.to_float()))

    def test_random_sequences(self, rng):
        for _ in range(200):
            n = int(rng.integers(1, 30))
            sigs = rng.integers(0, 1 << 24, n)
            signs = rng.integers(0, 2, n)
            lsbs = rng.integers(-160, 120, n)
            self.check(signs, sigs, lsbs)

    def test_wide_exponent_span(self, rng):
        # Spans far beyond the 48-bit window: the sequential re-rounding
        # discipline (not a single final anchor) is what must be matched.
        for _ in range(100):
            n = int(rng.integers(2, 12))
            sigs = rng.integers(1, 1 << 24, n)
            signs = rng.integers(0, 2, n)
            lsbs = rng.integers(-200, 200, n)
            self.check(signs, sigs, lsbs)

    def test_zero_significands_skipped(self):
        self.check([0, 1, 0, 0, 1], [5, 0, 7, 0, 3], [0, 50, -60, 999, -60])

    def test_all_zero(self):
        self.check([0, 1], [0, 0], [3, -7])

    def test_toward_zero_mode(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 16))
            self.check(
                rng.integers(0, 2, n),
                rng.integers(0, 1 << 24, n),
                rng.integers(-120, 120, n),
                mode=RoundingMode.TOWARD_ZERO,
            )

    def test_batched_matches_elementwise(self, rng):
        sigs = rng.integers(0, 1 << 24, (4, 5, 9))
        signs = rng.integers(0, 2, (4, 5, 9))
        lsbs = rng.integers(-150, 150, (4, 5, 9))
        value, window = sequential_windowed_sum(signs, sigs, lsbs)
        for i in range(4):
            for j in range(5):
                v, w = sequential_windowed_sum(signs[i, j], sigs[i, j], lsbs[i, j])
                assert int(value[i, j]) == int(v)
                assert int(window[i, j]) == int(w)

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_windowed_sum(np.array(0), np.array(1), np.array(0))
        with pytest.raises(ValueError):
            sequential_windowed_sum([0], [1], [0], acc_bits=4)
        with pytest.raises(ValueError):
            sequential_windowed_sum([0], [-1], [0])


class TestIntWindowToFloat:
    def test_matches_fraction_rounding(self, rng):
        for _ in range(300):
            value = int(rng.integers(-(1 << 60), 1 << 60))
            lsb = int(rng.integers(-200, 120))
            got = int_window_to_float(np.array(value), np.array(lsb), FP32)
            want = _round_int_scaled_to_fp32(value, lsb) if value else 0.0
            assert biteq(got, np.float64(want))

    def test_overflow_to_inf(self):
        got = int_window_to_float(np.array(1 << 50), np.array(100), FP32)
        assert got == np.inf

    def test_tiny_negative_rounds_to_signed_zero(self):
        # Below half the smallest subnormal: rounds to -0.0, as the
        # Fraction reference does.
        got = int_window_to_float(np.array(-1), np.array(-200), FP32)
        assert got == 0.0 and np.signbit(got)

    def test_exact_zero_is_positive(self):
        got = int_window_to_float(np.array(0), np.array(-200), FP32)
        assert got == 0.0 and not np.signbit(got)


class TestFieldHelpers:
    def test_matches_scalar_split(self, rng):
        pool = np.concatenate([
            random_fp32(rng, 64, scale_span=9),
            quantize(np.array([0.0, -0.0, 1e-44, -1e-44, 1.17e-38, 3.4e38, -3.4e38, 1.0]), FP32),
        ])
        sign, biased, hi, lo = split_fp32_fields(pool)
        for i, x in enumerate(pool):
            h, lw = split_fp32_bits(float(x))
            assert (sign[i], biased[i], hi[i]) == (h.sign, h.biased_exp, h.significand)
            assert lo[i] == lw.significand

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            fp32_bit_fields(np.array([1.0, np.inf]))
        with pytest.raises(ValueError):
            fp32_bit_fields(np.array([np.nan]))

    def test_rejects_unrepresentable(self):
        with pytest.raises(ValueError):
            fp32_bit_fields(np.array([1.0 + 2.0**-40]))

    def test_scalar_shape(self):
        sign, biased, mant = fp32_bit_fields(np.float64(-1.5))
        assert sign.shape == () and int(sign) == 1 and int(biased) == 127


class TestEngineResolution:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(BITLEVEL_ENV, raising=False)
        assert resolve_bitlevel_engine() == "vector"

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_ENV, "scalar")
        assert resolve_bitlevel_engine() == "scalar"
        assert BitLevelMXU().engine == "scalar"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_ENV, "scalar")
        assert resolve_bitlevel_engine("vector") == "vector"

    def test_unknown_engine_raises(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_ENV, "turbo")
        with pytest.raises(ValueError):
            resolve_bitlevel_engine()
        with pytest.raises(ValueError):
            BitLevelMXU(engine="blas")


class TestVectorEnginesMatchOracle:
    def test_fp32_matches_bitlevel_dot(self, rng):
        a = random_fp32(rng, (5, 7), scale_span=6)
        b = random_fp32(rng, (7, 4), scale_span=6)
        c = random_fp32(rng, (5, 4))
        ref = np.array([
            [bit_level_fp32_dot(a[m], b[:, n], float(c[m, n])) for n in range(4)]
            for m in range(5)
        ])
        assert biteq(vector_mma_fp32(a, b, c), ref)
        assert biteq(scalar_mma_fp32(a, b, c), ref)

    def test_fp32c_matches_bitlevel_dot(self, rng):
        a = quantize_complex(
            rng.standard_normal((4, 5)) + 1j * rng.standard_normal((4, 5)), FP32)
        b = quantize_complex(
            rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3)), FP32)
        c = quantize_complex(
            rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3)), FP32)
        ref = np.array([
            [bit_level_fp32c_dot(a[m], b[:, n], complex(c[m, n])) for n in range(3)]
            for m in range(4)
        ])
        assert biteq(vector_mma_fp32c(a, b, c), ref)
        assert biteq(scalar_mma_fp32c(a, b, c), ref)

    def test_shape_validation(self, rng):
        a = random_fp32(rng, (3, 4))
        with pytest.raises(ValueError):
            vector_mma_fp32(a, random_fp32(rng, (5, 2)), 0.0)
        with pytest.raises(ValueError):
            vector_mma_fp32(a[0], random_fp32(rng, (4, 2)), 0.0)


class TestProductFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProductFault(slot=0, element=(0, 0), bit=24)
        with pytest.raises(ValueError):
            ProductFault(slot=-1, element=(0, 0), bit=0)

    def test_slot_counts(self):
        assert product_slot_count(MXUMode.FP32, 4) == 16
        assert product_slot_count(MXUMode.FP32C, 2) == 32
        with pytest.raises(ValueError):
            product_slot_count(MXUMode.FP16, 4)

    def test_out_of_range_rejected(self, rng):
        a, b = random_fp32(rng, (2, 3)), random_fp32(rng, (3, 2))
        with pytest.raises(ValueError):
            vector_mma_fp32(a, b, 0.0, product_fault=ProductFault(12, (0, 0), 0))
        with pytest.raises(ValueError):
            vector_mma_fp32(a, b, 0.0, product_fault=ProductFault(0, (2, 0), 0))

    def test_fp32_engines_agree_on_fault(self, rng):
        a, b = random_fp32(rng, (3, 4), 4), random_fp32(rng, (4, 3), 4)
        clean = vector_mma_fp32(a, b, 0.0)
        changed = 0
        for slot in range(product_slot_count(MXUMode.FP32, 4)):
            pf = ProductFault(slot=slot, element=(1, 2), bit=int(rng.integers(24)))
            v = vector_mma_fp32(a, b, 0.0, product_fault=pf)
            s = scalar_mma_fp32(a, b, 0.0, product_fault=pf)
            assert biteq(v, s)
            changed += not biteq(v, clean)
        assert changed > 0  # the upset is observable, not a no-op

    def test_fp32c_engines_agree_on_fault(self, rng):
        a = quantize_complex(
            rng.standard_normal((2, 3)) + 1j * rng.standard_normal((2, 3)), FP32)
        b = quantize_complex(
            rng.standard_normal((3, 2)) + 1j * rng.standard_normal((3, 2)), FP32)
        for slot in range(0, product_slot_count(MXUMode.FP32C, 3), 5):
            pf = ProductFault(slot=slot, element=(0, 1), bit=int(rng.integers(24)))
            assert biteq(
                vector_mma_fp32c(a, b, 0.0, product_fault=pf),
                scalar_mma_fp32c(a, b, 0.0, product_fault=pf),
            )

    def test_fault_only_hits_named_element(self, rng):
        a, b = random_fp32(rng, (3, 4), 2), random_fp32(rng, (4, 3), 2)
        clean = vector_mma_fp32(a, b, 0.0)
        pf = ProductFault(slot=3, element=(2, 1), bit=23)
        dirty = vector_mma_fp32(a, b, 0.0, product_fault=pf)
        mask = np.ones_like(clean, dtype=bool)
        mask[2, 1] = False
        assert biteq(dirty[mask], clean[mask])


class TestBitLevelMXU:
    def test_rejects_unsupported_modes(self):
        unit = BitLevelMXU()
        a = np.ones((2, 2))
        for mode in (MXUMode.FP16, MXUMode.BF16, MXUMode.TF32, MXUMode.FP64):
            with pytest.raises(ValueError):
                unit.mma(a, a, 0.0, mode)

    def test_quantizes_inputs(self, rng):
        # Raw float64 operands are quantised to FP32 on the way in, like
        # the value-level M3XU — no representability error escapes.
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        got = BitLevelMXU().mma(a, b, 0.0, MXUMode.FP32)
        aq, bq = quantize(a, FP32), quantize(b, FP32)
        assert biteq(got, vector_mma_fp32(aq, bq, 0.0))

    def test_tiled_gemm_fused_false_swaps_engine(self, rng):
        g = TiledGEMM(M3XU(), MXUMode.FP32, fused=False)
        assert isinstance(g.mxu, BitLevelMXU)
        with pytest.raises(ValueError):
            TiledGEMM(M3XU(), MXUMode.FP16, fused=False).run(
                np.ones((2, 2)), np.ones((2, 2)))

    def test_fused_false_rejects_foreign_mxu(self):
        from repro.mxu.baseline import TensorCoreMXU

        with pytest.raises(ValueError):
            TiledGEMM(TensorCoreMXU(), MXUMode.FP32, fused=False)

    def test_sgemm_chunked_matches_chained_oracle(self, rng):
        a, b = random_fp32(rng, (4, 10), 3), random_fp32(rng, (10, 3), 3)
        got = mxu_sgemm(a, b, fused=False)
        want = np.zeros((4, 3))
        for m in range(4):
            for n in range(3):
                acc = 0.0
                for k0 in range(0, 10, 4):  # M3XU FP32 instruction K = 4
                    acc = bit_level_fp32_dot(a[m, k0:k0 + 4], b[k0:k0 + 4, n], acc)
                want[m, n] = acc
        assert biteq(got, want)

    def test_cgemm_plan_and_legacy_paths_identical(self, rng):
        a = quantize_complex(
            rng.standard_normal((3, 5)) + 1j * rng.standard_normal((3, 5)), FP32)
        b = quantize_complex(
            rng.standard_normal((5, 4)) + 1j * rng.standard_normal((5, 4)), FP32)
        planned = TiledGEMM(BitLevelMXU(), MXUMode.FP32C).run(a, b)
        legacy = TiledGEMM(BitLevelMXU(), MXUMode.FP32C, use_plan=False).run(a, b)
        assert biteq(planned, legacy)
        assert biteq(planned, mxu_cgemm(a, b, fused=False))

    def test_abft_guarded_bitlevel_identical(self, rng):
        a, b = random_fp32(rng, (6, 9), 2), random_fp32(rng, (9, 5), 2)
        plain = mxu_sgemm(a, b, fused=False)
        g = TiledGEMM(M3XU(), MXUMode.FP32, abft=True, fused=False)
        assert biteq(g.run(a, b), plain)
        assert g.abft_report is not None and not g.abft_report.detected
