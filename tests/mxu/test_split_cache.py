"""The content-addressed operand split cache: gate, LRU, bit-identity.

The cache's one claim: a hit returns exactly — bit for bit — what the
cold splitting code produces for the same operand bytes, and every knob
(env gate, entry bound, byte bound) only changes *whether* work is
reused, never what the consumers compute.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.gemm.batched import batched_mxu_cgemm, batched_mxu_sgemm
from repro.gemm.plan import OperandSplit
from repro.gemm.tiled import mxu_cgemm, mxu_sgemm
from repro.mxu.modes import MXUMode
from repro.mxu.split_cache import (
    DEFAULT_SPLIT_CACHE,
    SPLIT_CACHE_ENV,
    SPLIT_CACHE_MIN_BYTES,
    SplitCache,
    freeze_arrays,
    operand_digest,
    resolve_split_cache,
    split_cache_probe,
)
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex


@pytest.fixture(autouse=True)
def _clean_cache():
    DEFAULT_SPLIT_CACHE.clear()
    os.environ.pop(SPLIT_CACHE_ENV, None)
    yield
    DEFAULT_SPLIT_CACHE.clear()
    os.environ.pop(SPLIT_CACHE_ENV, None)


def _big(rng, m=32, k=32):
    """An operand comfortably above the caching floor."""
    x = quantize(rng.standard_normal((m, k)), FP32)
    assert x.nbytes >= SPLIT_CACHE_MIN_BYTES
    return x


class TestResolveSplitCache:
    def test_default_on(self):
        assert resolve_split_cache() is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", "no"])
    def test_env_disables(self, raw):
        os.environ[SPLIT_CACHE_ENV] = raw
        assert resolve_split_cache() is False

    @pytest.mark.parametrize("raw", ["1", "true", "on", "yes"])
    def test_env_enables(self, raw):
        os.environ[SPLIT_CACHE_ENV] = raw
        assert resolve_split_cache() is True

    def test_explicit_overrides_env(self):
        os.environ[SPLIT_CACHE_ENV] = "0"
        assert resolve_split_cache(True) is True
        os.environ[SPLIT_CACHE_ENV] = "1"
        assert resolve_split_cache(False) is False

    def test_malformed_env_warns_and_stays_enabled(self):
        os.environ[SPLIT_CACHE_ENV] = "many"
        with pytest.warns(RuntimeWarning, match="not a boolean"):
            assert resolve_split_cache() is True


class TestSplitCacheLRU:
    def test_entry_bound_evicts_lru(self):
        cache = SplitCache(max_entries=2, max_bytes=1 << 30)
        a, b, c = (np.zeros(8), np.ones(8), np.full(8, 2.0))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refresh: "b" is now LRU
        cache.put("c", c)
        assert cache.get("b") is None
        assert cache.get("a") is a and cache.get("c") is c
        assert cache.info()["evictions"] == 1

    def test_byte_bound_evicts(self):
        one_kb = np.zeros(128)  # 1024 bytes
        cache = SplitCache(max_entries=64, max_bytes=2 * one_kb.nbytes)
        cache.put("a", np.zeros(128))
        cache.put("b", np.zeros(128))
        cache.put("c", np.zeros(128))
        info = cache.info()
        assert info["entries"] == 2
        assert info["bytes"] <= cache.max_bytes
        assert cache.get("a") is None

    def test_oversized_value_not_stored_but_returned(self):
        cache = SplitCache(max_entries=4, max_bytes=64)
        big = np.zeros(1024)
        assert cache.put("big", big) is big
        assert cache.info()["entries"] == 0
        assert not big.flags.writeable  # frozen regardless

    def test_hits_are_shared_frozen_references(self):
        cache = SplitCache()
        value = {"hi": np.zeros(16), "lo": np.ones(16)}
        cache.put("k", value)
        hit = cache.get("k")
        assert hit is value
        assert not hit["hi"].flags.writeable

    def test_freeze_arrays_walks_containers(self):
        arrs = (np.zeros(4), [np.ones(4), {"x": np.full(4, 3.0)}])
        freeze_arrays(arrs)
        assert not arrs[0].flags.writeable
        assert not arrs[1][0].flags.writeable
        assert not arrs[1][1]["x"].flags.writeable

    def test_digest_separates_tags_and_collides_bytes(self):
        x = np.arange(16.0)
        assert operand_digest(x, "fp32") == operand_digest(x.copy(), "fp32")
        assert operand_digest(x, "fp32") != operand_digest(x, "fp32c")
        assert operand_digest(x, "fp32") != operand_digest(x + 1.0, "fp32")

    def test_probe_reports_this_process(self):
        info = split_cache_probe()
        assert set(info) >= {"enabled", "entries", "hits", "misses"}


class TestOperandSplitCaching:
    def test_repeat_build_hits_and_shares(self):
        rng = np.random.default_rng(1)
        a = _big(rng)
        first = OperandSplit.build(a, MXUMode.FP32)
        second = OperandSplit.build(a.copy(), MXUMode.FP32)
        assert second is first
        info = DEFAULT_SPLIT_CACHE.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert not first.dense.flags.writeable

    def test_hit_bit_identical_to_cold(self):
        rng = np.random.default_rng(2)
        a = _big(rng)
        warm = OperandSplit.build(a, MXUMode.FP32)
        warm = OperandSplit.build(a, MXUMode.FP32)
        cold = OperandSplit.build(a, MXUMode.FP32, use_cache=False)
        assert warm.dense.tobytes() == cold.dense.tobytes()
        assert set(warm.parts) == set(cold.parts)
        for name in warm.parts:
            assert warm.parts[name].tobytes() == cold.parts[name].tobytes()

    def test_small_operands_bypass(self):
        rng = np.random.default_rng(3)
        tiny = quantize(rng.standard_normal((4, 4)), FP32)
        OperandSplit.build(tiny, MXUMode.FP32)
        assert DEFAULT_SPLIT_CACHE.info()["entries"] == 0

    def test_disabled_env_bypasses(self):
        rng = np.random.default_rng(4)
        os.environ[SPLIT_CACHE_ENV] = "0"
        OperandSplit.build(_big(rng), MXUMode.FP32)
        assert DEFAULT_SPLIT_CACHE.info()["entries"] == 0

    @pytest.mark.parametrize("lead", [1, 3])
    def test_identical_slice_stack_dedupes_to_one_split(self, lead):
        rng = np.random.default_rng(5)
        base = _big(rng)
        stack = np.stack([base] * lead)
        split = OperandSplit.build(stack, MXUMode.FP32)
        cold = OperandSplit.build(stack, MXUMode.FP32, use_cache=False)
        assert split.dense.shape == stack.shape
        assert split.dense.tobytes() == cold.dense.tobytes()
        for name in cold.parts:
            assert split.parts[name].tobytes() == cold.parts[name].tobytes()
        # One 2-D entry serves the whole stack.
        assert DEFAULT_SPLIT_CACHE.info()["entries"] == 1

    def test_distinct_slice_stack_not_deduped(self):
        rng = np.random.default_rng(6)
        stack = np.stack([_big(rng), _big(rng)])
        split = OperandSplit.build(stack, MXUMode.FP32)
        cold = OperandSplit.build(stack, MXUMode.FP32, use_cache=False)
        assert split.dense.tobytes() == cold.dense.tobytes()
        assert DEFAULT_SPLIT_CACHE.info()["entries"] == 0

    def test_modes_do_not_collide(self):
        rng = np.random.default_rng(7)
        a = _big(rng)
        fp32 = OperandSplit.build(a, MXUMode.FP32)
        bf16 = OperandSplit.build(a, MXUMode.BF16)
        assert fp32.mode is not bf16.mode
        assert DEFAULT_SPLIT_CACHE.info()["misses"] == 2


class TestEndToEndBitIdentity:
    """Cached vs uncached full GEMMs, value-level entry points."""

    def test_mxu_sgemm_warm_vs_cold(self):
        rng = np.random.default_rng(8)
        a = quantize(rng.standard_normal((48, 48)), FP32)
        b = quantize(rng.standard_normal((48, 48)), FP32)
        warm1 = mxu_sgemm(a, b)
        warm2 = mxu_sgemm(a, b)
        os.environ[SPLIT_CACHE_ENV] = "0"
        cold = mxu_sgemm(a, b)
        assert warm1.tobytes() == cold.tobytes()
        assert warm2.tobytes() == cold.tobytes()

    def test_mxu_cgemm_warm_vs_cold(self):
        rng = np.random.default_rng(9)
        a = quantize_complex(
            rng.standard_normal((32, 32)) + 1j * rng.standard_normal((32, 32)), FP32
        )
        b = quantize_complex(
            rng.standard_normal((32, 32)) + 1j * rng.standard_normal((32, 32)), FP32
        )
        warm1 = mxu_cgemm(a, b)
        warm2 = mxu_cgemm(a, b)
        os.environ[SPLIT_CACHE_ENV] = "0"
        cold = mxu_cgemm(a, b)
        assert warm1.tobytes() == cold.tobytes()
        assert warm2.tobytes() == cold.tobytes()

    def test_batched_repeated_a_warm_vs_cold(self):
        rng = np.random.default_rng(10)
        a = np.stack([rng.standard_normal((32, 32))] * 4)
        b = rng.standard_normal((4, 32, 8))
        warm = batched_mxu_sgemm(a, b)
        assert DEFAULT_SPLIT_CACHE.info()["entries"] >= 1
        warm2 = batched_mxu_sgemm(a, b)
        os.environ[SPLIT_CACHE_ENV] = "0"
        cold = batched_mxu_sgemm(a, b)
        assert warm.tobytes() == cold.tobytes()
        assert warm2.tobytes() == cold.tobytes()

    def test_batched_cgemm_warm_vs_cold(self):
        rng = np.random.default_rng(11)
        stack = rng.standard_normal((3, 32, 32)) + 1j * rng.standard_normal(
            (3, 32, 32)
        )
        b = rng.standard_normal((3, 32, 8)) + 1j * rng.standard_normal((3, 32, 8))
        warm = batched_mxu_cgemm(stack, b)
        warm2 = batched_mxu_cgemm(stack, b)
        os.environ[SPLIT_CACHE_ENV] = "0"
        cold = batched_mxu_cgemm(stack, b)
        assert warm.tobytes() == cold.tobytes()
        assert warm2.tobytes() == cold.tobytes()
