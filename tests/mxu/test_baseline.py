"""Baseline Tensor Core functional model."""

import numpy as np
import pytest

from repro.arith import exact_dot
from repro.mxu import AMPERE_MXU, MXUMode, TensorCoreMXU
from repro.types import FP16, FP32, TF32, quantize
from tests.conftest import fp32_array


@pytest.fixture
def tc() -> TensorCoreMXU:
    return TensorCoreMXU()


class TestSupportedModes:
    def test_supports_three_low_precision_modes(self, tc):
        assert tc.supported_modes() == frozenset(
            {MXUMode.FP16, MXUMode.BF16, MXUMode.TF32}
        )

    @pytest.mark.parametrize("mode", [MXUMode.FP32, MXUMode.FP32C, MXUMode.FP64])
    def test_rejects_high_precision(self, tc, rng, mode):
        # "Current Tensor Cores provide no hardware support for true FP32
        # arithmetic or complex numbers."
        a = np.zeros((8, 4))
        b = np.zeros((4, 4))
        with pytest.raises(ValueError):
            tc.mma(a, b, 0.0, mode)


class TestNumerics:
    def test_fp16_mma_near_exact(self, tc, rng):
        a = quantize(rng.normal(size=(8, 8)), FP16)
        b = quantize(rng.normal(size=(8, 4)), FP16)
        c = fp32_array(rng, (8, 4))
        d = tc.mma(a, b, c, MXUMode.FP16)
        for i in range(8):
            for j in range(4):
                ref = exact_dot(list(a[i]), list(b[:, j]), float(c[i, j]), FP32)
                # Finite truncating accumulation over K=8 products plus C:
                # within a few FP32 ulps of the correctly-rounded result.
                assert abs(d[i, j] - ref) <= 8 * abs(ref) * 2.0**-23 + 2.0**-126

    def test_tf32_mode_quantizes_fp32_inputs(self, tc, rng):
        # Feeding FP32 data through TF32 silently drops 13 mantissa bits.
        a = fp32_array(rng, (8, 8))
        b = fp32_array(rng, (8, 4))
        d = tc.mma(a, b, 0.0, MXUMode.TF32)
        dq = tc.mma(quantize(a, TF32), quantize(b, TF32), 0.0, MXUMode.TF32)
        np.testing.assert_array_equal(d, dq)

    def test_tf32_precision_loss_visible(self, tc, rng):
        a = fp32_array(rng, (8, 8))
        b = fp32_array(rng, (8, 4))
        d = tc.mma(a, b, 0.0, MXUMode.TF32)
        ref = a @ b
        # TF32's 10-bit mantissa: errors around 2^-11 relative.
        err = np.max(np.abs(d - ref) / np.abs(ref))
        assert 2.0**-14 < err < 2.0**-7

    def test_fp32_accumulator_avoids_fp16_overflow(self, tc):
        # Products exceed FP16 range but the FP32 accumulator holds them —
        # the reason mixed-precision MMA accumulates in FP32.
        a = np.full((1, 2), 60000.0)
        b = np.full((2, 1), 60000.0)
        d = tc.mma(quantize(a, FP16), quantize(b, FP16), 0.0, MXUMode.FP16)
        assert d[0, 0] == pytest.approx(2 * 60000.0**2, rel=1e-6)
        assert np.isfinite(d[0, 0])

    def test_truncating_accumulator_biases_toward_zero(self, tc, rng):
        # RTZ alignment never increases the wide sum for positive addends;
        # only the final FP32 RNE rounding can nudge upward (<= 1/2 ulp).
        a = quantize(np.abs(rng.normal(size=(64, 8))) + 0.1, FP16)
        b = quantize(np.abs(rng.normal(size=(8, 1))) + 0.1, FP16)
        d = tc.mma(a, b, 0.0, MXUMode.FP16)
        exact = a @ b
        half_ulp = np.abs(exact) * 2.0**-24
        assert np.all(d <= exact + half_ulp + 1e-12)
        # and the truncation bias is visible: the mean error is negative.
        assert np.mean(d - exact) < 0.0

    def test_k_mismatch(self, tc):
        with pytest.raises(ValueError):
            tc.mma(np.zeros((2, 3)), np.zeros((2, 3)), 0.0, MXUMode.FP16)


class TestConfig:
    def test_ampere_tile_shapes(self):
        t = AMPERE_MXU.tile(MXUMode.FP16)
        assert (t.m, t.n, t.k) == (8, 4, 8)
        assert t.macs == 256
        assert t.flops == 512

    def test_acc_is_truncating_27_bit(self):
        from repro.arith import TENSORCORE_ACC_BITS
        from repro.types.rounding import RoundingMode

        assert AMPERE_MXU.acc_bits == TENSORCORE_ACC_BITS
        assert AMPERE_MXU.acc_rounding is RoundingMode.TOWARD_ZERO
