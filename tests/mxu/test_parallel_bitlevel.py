"""The sharded bit-level GEMM driver: parity, routing, pool hygiene.

Every test here enforces the module's one claim: the column-sharded
driver is bit-identical to the serial per-MMA chain at *every* worker
count, chunk size, engine, and transport, and it composes with the pool
without deadlocks or leaked shared-memory segments.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import parallel
from repro.gemm.tiled import TiledGEMM, mxu_cgemm, mxu_sgemm
from repro.mxu.modes import MXUMode
from repro.mxu.parallel_bitlevel import (
    BITLEVEL_CHUNK_ENV,
    DEFAULT_BITLEVEL_CHUNK,
    resolve_bitlevel_chunk,
    sharded_bitlevel_gemm,
)
from repro.mxu.vectorized import BitLevelMXU, NonFiniteOperandError
from repro.parallel import parallel_map, pool_info
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex

WORKER_GRID = [0, 1, 2, 3]


@pytest.fixture(autouse=True)
def _fresh_pool():
    parallel.shutdown()
    yield
    parallel.shutdown()


def _real(rng, m, k, n):
    return (
        quantize(rng.standard_normal((m, k)), FP32),
        quantize(rng.standard_normal((k, n)), FP32),
        quantize(rng.standard_normal((m, n)), FP32),
    )


def _cplx(rng, m, k, n):
    mk = rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))
    kn = rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))
    mn = rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))
    return (
        quantize_complex(mk, FP32),
        quantize_complex(kn, FP32),
        quantize_complex(mn, FP32),
    )


def _per_mma_chain(a, b, c, mode, engine="vector"):
    """The serial reference: one BitLevelMXU.mma per K-chunk."""
    gemm = TiledGEMM(BitLevelMXU(engine=engine), mode, fused=False)
    mxu = gemm.mxu
    step = gemm.k_chunk
    acc = np.broadcast_to(np.asarray(c), (a.shape[0], b.shape[1]))
    for k0 in range(0, a.shape[1], int(step)):
        acc = mxu.mma(a[:, k0 : k0 + step], b[k0 : k0 + step, :], acc, mode)
    return np.asarray(acc)


# ---- module-level (picklable) helpers for nested-pool tests ----------


def _nested_sharded(payload):
    a, b, c = payload
    before = parallel.pool_info()["spawns"]
    out = sharded_bitlevel_gemm(a, b, c, workers=2, chunk=2)
    spawned = parallel.pool_info()["spawns"] - before
    return os.getpid(), spawned, out


class TestResolveChunk:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(BITLEVEL_CHUNK_ENV, raising=False)
        assert resolve_bitlevel_chunk() == DEFAULT_BITLEVEL_CHUNK

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_CHUNK_ENV, "17")
        assert resolve_bitlevel_chunk() == 17

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_CHUNK_ENV, "17")
        assert resolve_bitlevel_chunk(5) == 5

    def test_bad_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_CHUNK_ENV, "many")
        with pytest.warns(RuntimeWarning, match="many"):
            assert resolve_bitlevel_chunk() == DEFAULT_BITLEVEL_CHUNK

    def test_below_one_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(BITLEVEL_CHUNK_ENV, "0")
        with pytest.warns(RuntimeWarning, match="positive"):
            assert resolve_bitlevel_chunk() == DEFAULT_BITLEVEL_CHUNK

    def test_below_one_rejected(self):
        with pytest.raises(ValueError):
            resolve_bitlevel_chunk(0)


class TestShardedParity:
    """Bit-identity to the serial per-MMA chain at every worker count."""

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_fp32_every_worker_count(self, rng, workers):
        a, b, c = _real(rng, 9, 21, 13)
        want = _per_mma_chain(a, b, c, MXUMode.FP32)
        got = sharded_bitlevel_gemm(a, b, c, workers=workers, chunk=4)
        assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("workers", [1, 3])
    def test_fp32c_parity(self, rng, workers):
        a, b, c = _cplx(rng, 6, 9, 7)
        want = _per_mma_chain(a, b, c, MXUMode.FP32C)
        got = sharded_bitlevel_gemm(
            a, b, c, MXUMode.FP32C, workers=workers, chunk=3
        )
        assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("chunk", [1, 5, 64])
    def test_chunk_size_never_changes_bits(self, rng, chunk):
        a, b, c = _real(rng, 5, 13, 11)
        want = sharded_bitlevel_gemm(a, b, c, workers=1)
        got = sharded_bitlevel_gemm(a, b, c, workers=2, chunk=chunk)
        assert got.tobytes() == want.tobytes()

    def test_scalar_engine_shards_too(self, rng):
        a, b, c = _real(rng, 3, 8, 5)
        want = _per_mma_chain(a, b, c, MXUMode.FP32, engine="scalar")
        got = sharded_bitlevel_gemm(a, b, c, engine="scalar", workers=2, chunk=2)
        assert got.tobytes() == want.tobytes()

    def test_empty_k_and_empty_n(self, rng):
        c = quantize(rng.standard_normal((4, 3)), FP32)
        got = sharded_bitlevel_gemm(np.empty((4, 0)), np.empty((0, 3)), c, workers=2)
        assert got.tobytes() == np.asarray(c, dtype=np.float64).tobytes()
        empty = sharded_bitlevel_gemm(
            np.empty((4, 5)), np.empty((5, 0)), 0.0, workers=2
        )
        assert empty.shape == (4, 0)

    def test_operand_validation(self, rng):
        a, b, _ = _real(rng, 3, 4, 3)
        with pytest.raises(ValueError, match="fp32"):
            sharded_bitlevel_gemm(a, b, 0.0, MXUMode.FP16)
        with pytest.raises(ValueError, match="K mismatch"):
            sharded_bitlevel_gemm(a, b[:-1], 0.0)
        with pytest.raises(ValueError, match="2-D"):
            sharded_bitlevel_gemm(a[0], b, 0.0)
        with pytest.raises(ValueError, match="k_chunk"):
            sharded_bitlevel_gemm(a, b, 0.0, k_chunk=0)


class TestTiledRouting:
    """TiledGEMM / mxu_sgemm / mxu_cgemm ride the sharded driver."""

    def test_plain_bitlevel_takes_sharded_path(self, rng, monkeypatch):
        import repro.gemm.tiled as tiled

        calls = []
        real = tiled.sharded_bitlevel_gemm

        def spy(*args, **kwargs):
            calls.append(kwargs.get("workers"))
            return real(*args, **kwargs)

        monkeypatch.setattr(tiled, "sharded_bitlevel_gemm", spy)
        a, b, c = _real(rng, 5, 9, 6)
        gemm = TiledGEMM(BitLevelMXU(), MXUMode.FP32, fused=False, workers=2)
        want = _per_mma_chain(a, b, c, MXUMode.FP32)
        assert gemm.run(a, b, c).tobytes() == want.tobytes()
        assert calls == [2]

    def test_wrapped_mxu_keeps_per_mma_path(self, rng, monkeypatch):
        # Subclasses / fault-injecting wrappers must see every MMA, so
        # they may never route through the sharded driver.
        import repro.gemm.tiled as tiled

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("wrapped MXU must not take the sharded driver")

        monkeypatch.setattr(tiled, "sharded_bitlevel_gemm", forbidden)

        class Hooked(BitLevelMXU):
            pass

        a, b, c = _real(rng, 4, 8, 4)
        want = _per_mma_chain(a, b, c, MXUMode.FP32)
        got = TiledGEMM(Hooked(), MXUMode.FP32, fused=False).run(a, b, c)
        assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_mxu_sgemm_workers_parity(self, rng, workers):
        a, b, c = _real(rng, 7, 12, 9)
        want = mxu_sgemm(a, b, c, mxu=BitLevelMXU(), fused=False)
        got = mxu_sgemm(a, b, c, mxu=BitLevelMXU(), fused=False, workers=workers)
        assert got.tobytes() == want.tobytes()

    def test_mxu_cgemm_workers_parity(self, rng):
        a, b, c = _cplx(rng, 5, 8, 6)
        want = mxu_cgemm(a, b, c, mxu=BitLevelMXU(), fused=False)
        got = mxu_cgemm(a, b, c, mxu=BitLevelMXU(), fused=False, workers=3)
        assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_abft_guarded_parity(self, rng, workers):
        # The guard's tile recomputation inherits the sharded path; the
        # guarded result and report must not depend on the worker count.
        a, b, c = _real(rng, 8, 16, 8)
        serial = TiledGEMM(BitLevelMXU(), MXUMode.FP32, fused=False, abft=True)
        want = serial.run(a, b, c)
        assert serial.abft_report is not None
        gemm = TiledGEMM(
            BitLevelMXU(), MXUMode.FP32, fused=False, abft=True, workers=workers
        )
        got = gemm.run(a, b, c)
        assert got.tobytes() == want.tobytes()
        assert gemm.abft_report is not None
        assert gemm.abft_report.checks == serial.abft_report.checks
        assert gemm.abft_report.detected == serial.abft_report.detected


class TestPoolHygiene:
    """Nested calls collapse to serial; shm segments never leak."""

    def test_nested_sharded_call_runs_serial_in_worker(self, rng):
        a, b, c = _real(rng, 4, 8, 6)
        want = sharded_bitlevel_gemm(a, b, c, workers=1)
        results = parallel_map(
            _nested_sharded, [(a, b, c)] * 2, workers=2, chunk_size=1
        )
        for pid, spawned_in_worker, out in results:
            assert pid != os.getpid()
            assert spawned_in_worker == 0  # no pool forked inside the pool
            assert out.tobytes() == want.tobytes()

    def test_shm_transport_parity_and_release(self, rng, monkeypatch):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("POSIX shm filesystem not visible")
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "64")
        a, b, c = _real(rng, 6, 12, 8)
        want = _per_mma_chain(a, b, c, MXUMode.FP32)
        before = set(os.listdir("/dev/shm"))
        got = sharded_bitlevel_gemm(a, b, c, workers=2, chunk=2)
        assert got.tobytes() == want.tobytes()
        assert set(os.listdir("/dev/shm")) - before == set()

    def test_shm_released_when_a_shard_fails(self, rng, monkeypatch):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("POSIX shm filesystem not visible")
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "64")
        a, b, c = _real(rng, 6, 12, 8)
        a[2, 3] = np.inf  # rejected by the finite-operand contract
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(NonFiniteOperandError):
            sharded_bitlevel_gemm(a, b, c, workers=2, chunk=2)
        assert set(os.listdir("/dev/shm")) - before == set()
        # pool is not poisoned: the next sharded call succeeds
        a[2, 3] = 1.0
        want = _per_mma_chain(a, b, c, MXUMode.FP32)
        got = sharded_bitlevel_gemm(a, b, c, workers=2, chunk=2)
        assert got.tobytes() == want.tobytes()

    def test_serial_sharding_spawns_no_pool(self, rng):
        a, b, c = _real(rng, 4, 8, 4)
        before = pool_info()["spawns"]
        sharded_bitlevel_gemm(a, b, c, workers=1)
        assert pool_info()["spawns"] == before


class TestCampaignWorkerParity:
    @pytest.mark.parametrize("workers", ["0", "1", "2", "3"])
    def test_bitlevel_campaign_records_worker_invariant(self, workers, monkeypatch):
        from repro.resilience.campaign import (
            BITLEVEL_STAGES,
            CampaignConfig,
            run_campaign,
        )

        cfg = CampaignConfig(
            trials=6, seed=77, m=8, n=6, k=8,
            stages=BITLEVEL_STAGES, engine="bitlevel",
        )
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        want = run_campaign(cfg).records
        monkeypatch.setenv("REPRO_WORKERS", workers)
        assert run_campaign(cfg).records == want
