"""Section IV-C: higher-bitwidth composition and design space."""

import numpy as np
import pytest

from repro.mxu import MultiStepScheme, composed_gemm, design_space
from repro.types import FP32, FP64, quantize


class TestScheme:
    def test_m3xu_point_matches_corollaries(self):
        # FP32 on 12-bit slices IS the paper's design: 2 slices, 2 steps,
        # 1/4 of native throughput (Corollaries 1-2).
        s = MultiStepScheme(FP32, 12)
        assert s.n_slices == 2
        assert s.steps == 2
        assert s.throughput_fraction == 0.25
        assert s.kept_products == 4

    def test_fp64_on_27_bit_slices(self):
        s = MultiStepScheme(FP64, 27)
        assert s.n_slices == 2
        assert s.kept_products == 4

    def test_pruning_reduces_products(self):
        full = MultiStepScheme(FP32, 8)
        pruned = MultiStepScheme(FP32, 8, prune_below=16)
        assert pruned.kept_products < full.kept_products
        assert pruned.steps <= full.steps

    def test_narrow_slices_cost_more_steps(self):
        s8 = MultiStepScheme(FP32, 8)
        s12 = MultiStepScheme(FP32, 12)
        assert s8.steps > s12.steps
        assert s8.throughput_fraction < s12.throughput_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiStepScheme(FP32, 2)


class TestComposedGemm:
    def test_fp32_accuracy(self, rng):
        a = rng.uniform(0.5, 1.5, size=(16, 16))
        b = rng.uniform(0.5, 1.5, size=(16, 16))
        got = composed_gemm(a, b, MultiStepScheme(FP32, 12))
        ref = quantize(a, FP32) @ quantize(b, FP32)
        np.testing.assert_allclose(got, ref, rtol=1e-6)

    def test_pruned_less_accurate(self, rng):
        a = rng.uniform(0.5, 1.5, size=(16, 16))
        b = rng.uniform(0.5, 1.5, size=(16, 16))
        ref = a @ b
        exact = composed_gemm(a, b, MultiStepScheme(FP32, 8))
        pruned = composed_gemm(a, b, MultiStepScheme(FP32, 8, prune_below=8))
        assert np.max(np.abs(pruned - ref)) >= np.max(np.abs(exact - ref))

    def test_fp64_beats_fp32(self, rng):
        a = rng.uniform(0.5, 1.5, size=(12, 12))
        b = rng.uniform(0.5, 1.5, size=(12, 12))
        ref = a @ b
        e64 = np.max(np.abs(composed_gemm(a, b, MultiStepScheme(FP64, 16)) - ref))
        e32 = np.max(np.abs(composed_gemm(a, b, MultiStepScheme(FP32, 12)) - ref))
        assert e64 < e32 / 1e4


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def points(self):
        return design_space()

    def test_covers_both_targets(self, points):
        targets = {p.target for p in points}
        assert targets == {"fp32", "fp64"}

    def test_fp32_points_reach_fp32_accuracy(self, points):
        for p in points:
            if p.target == "fp32":
                assert p.matching_bits > 22.0, p.name

    def test_fp64_points_reach_near_fp64(self, points):
        for p in points:
            if p.target == "fp64":
                assert p.matching_bits > 45.0, p.name

    def test_throughput_monotone_in_slice_width(self, points):
        fp32 = {p.slice_bits: p.throughput_fraction for p in points if p.target == "fp32"}
        assert fp32[8] < fp32[12] <= fp32[16]
