"""The MMA ISA descriptors and Section V-B emulation identities."""

import pytest

from repro.mxu import MMA_DESCRIPTORS, MXUMode, emulation_costs


class TestDescriptors:
    def test_fp16_unit_shape(self):
        d = MMA_DESCRIPTORS[MXUMode.FP16]
        assert (d.m, d.n, d.k, d.steps) == (16, 8, 16, 1)

    def test_m3xu_fp32_is_m16n8k8_two_steps(self):
        # Section V-B1 (a)/(b): "Each M3XU FP32 MMA instruction computes
        # one 16x8x8 matrix multiplication" taking 2x the FP16 MMA cycles.
        d = MMA_DESCRIPTORS[MXUMode.FP32]
        assert (d.m, d.n, d.k, d.steps) == (16, 8, 8, 2)

    def test_fp32c_four_steps(self):
        assert MMA_DESCRIPTORS[MXUMode.FP32C].steps == 4

    def test_operand_bytes_equal_across_modes(self):
        # Requirement (c): one MMA of any mode fetches the same bytes.
        ref = MMA_DESCRIPTORS[MXUMode.FP16].operand_bytes
        for mode in (MXUMode.FP32, MXUMode.FP32C, MXUMode.TF32):
            assert MMA_DESCRIPTORS[mode].operand_bytes == ref, mode

    def test_names(self):
        assert MMA_DESCRIPTORS[MXUMode.FP32].name == "mma.fp32.m16n8k8"


class TestEmulationIdentities:
    """The 2x/4x instrumentation rules the paper's framework enforces."""

    def test_fp32_doubles_instructions_and_traffic(self):
        fp16 = emulation_costs(2048, 2048, 2048, MXUMode.FP16)
        fp32 = emulation_costs(2048, 2048, 2048, MXUMode.FP32)
        instr, latency, traffic = fp32.ratio_to(fp16)
        assert instr == 2.0
        assert traffic == 2.0
        assert latency == 4.0  # 2x instructions x 2x cycles = Corollary 2

    def test_fp32c_quadruples_instructions_and_traffic(self):
        fp16 = emulation_costs(2048, 2048, 2048, MXUMode.FP16)
        c = emulation_costs(2048, 2048, 2048, MXUMode.FP32C)
        instr, latency, traffic = c.ratio_to(fp16)
        assert instr == 4.0
        assert traffic == 4.0
        assert latency == 16.0  # Corollary 3

    def test_ragged_problems_round_up(self):
        c = emulation_costs(17, 9, 17, MXUMode.FP16)
        assert c.mma_instructions == 2 * 2 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            emulation_costs(0, 8, 8, MXUMode.FP16)
