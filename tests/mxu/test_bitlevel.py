"""The bit-level (RTL-fidelity) FP32 datapath vs the value-level model."""

import numpy as np
import pytest

from repro.arith import exact_dot
from repro.mxu import M3XU, BitAccumulator, bit_level_fp32_dot, split_fp32_bits
from repro.types import FP32, quantize
from repro.types.rounding import RoundingMode


class TestSliceWiring:
    def test_one_point_five(self):
        # 1.5 = sign 0, exp 127, mantissa 0x400000.
        hi, lo = split_fp32_bits(1.5)
        assert hi.sign == 0 and hi.biased_exp == 127
        assert hi.significand == 0b110000000000  # hidden 1 + m[22:12]
        assert lo.significand == 0

    def test_low_bits_land_in_low_slice(self):
        x = float(np.float32(1.0 + 2.0**-23))  # mantissa LSB set
        hi, lo = split_fp32_bits(x)
        assert lo.significand == 1
        assert hi.significand == 1 << 11

    def test_exponent_shared(self, rng):
        for v in quantize(rng.normal(size=50) * 1e3, FP32):
            hi, lo = split_fp32_bits(float(v))
            assert hi.biased_exp == lo.biased_exp
            assert hi.sign == lo.sign

    def test_subnormal_no_hidden_bit(self):
        hi, lo = split_fp32_bits(2.0**-140)
        assert hi.biased_exp == 0
        assert (hi.significand >> 11) == 0  # no hidden 1

    def test_values_reconstruct(self, rng):
        for v in quantize(rng.normal(size=100) * 10.0 ** rng.uniform(-20, 20, 100), FP32):
            hi, lo = split_fp32_bits(float(v))
            e = (hi.biased_exp - 127) if hi.biased_exp else -126
            recon = (
                (-1.0) ** hi.sign
                * (hi.significand * 2.0 ** (e - 11) + lo.significand * 2.0 ** (e - 23))
            )
            assert recon == float(v)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            split_fp32_bits(float("inf"))


class TestBitAccumulator:
    def test_simple_sum(self):
        acc = BitAccumulator(width=48)
        acc.add(0, 3, 0)
        acc.add(0, 5, 0)
        assert acc.to_float() == 8.0

    def test_subtraction(self):
        acc = BitAccumulator(width=48)
        acc.add(0, 10, 0)
        acc.add(1, 3, 0)
        assert acc.to_float() == 7.0

    def test_weighted_add(self):
        acc = BitAccumulator(width=48)
        acc.add(0, 1, 10)  # 1024
        acc.add(0, 1, 0)   # 1
        assert acc.to_float() == 1025.0

    def test_window_drops_far_low_bits(self):
        acc = BitAccumulator(width=16)
        acc.add(0, 1, 0)
        acc.add(0, 1, -40)  # far below a 16-bit window anchored at 2^0
        assert acc.to_float() == 1.0

    def test_48_bit_window_holds_m3xu_span(self):
        # H*H at 2^24 relative and L*L at 2^0 relative: 48 bits exactly.
        acc = BitAccumulator(width=48)
        acc.add(0, 1, 24)
        acc.add(0, 1, 0)
        assert acc.to_float() == float(np.float32(2.0**24 + 1.0))

    def test_zero_contribution_ignored(self):
        acc = BitAccumulator(width=48)
        acc.add(0, 0, 5)
        assert acc.to_float() == 0.0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            BitAccumulator(width=4)

    def test_truncation_mode(self):
        acc = BitAccumulator(width=8, mode=RoundingMode.TOWARD_ZERO)
        acc.add(0, 255, 0)
        acc.add(0, 3, -4)  # below the window LSB -> truncated away
        assert acc.to_float() == 255.0


class TestCrossValidation:
    def test_matches_value_level_and_exact(self, rng):
        unit = M3XU()
        for _ in range(40):
            k = int(rng.integers(1, 9))
            a = quantize(rng.normal(size=k) * 10.0 ** rng.uniform(-8, 8), FP32)
            b = quantize(rng.normal(size=k) * 10.0 ** rng.uniform(-8, 8), FP32)
            c = float(quantize(np.array(rng.normal()), FP32))
            bit = bit_level_fp32_dot(a, b, c)
            val = float(unit.mma_fp32(a.reshape(1, -1), b.reshape(-1, 1), c)[0, 0])
            ref = exact_dot(list(a), list(b), c, FP32)
            assert bit == val == ref

    def test_cancellation(self):
        eps = 2.0**-23
        got = bit_level_fp32_dot(np.array([1.0 + eps, -1.0]), np.array([1.0, 1.0]))
        assert got == eps

    def test_subnormal_operands(self):
        a = np.array([2.0**-130, 2.0**-149])
        b = np.array([4.0, 8.0])
        ref = exact_dot(list(a), list(b), 0.0, FP32)
        assert bit_level_fp32_dot(a, b) == ref

    def test_narrow_accumulator_degrades(self, rng):
        # With a 24-bit window the datapath must lose bits a 48-bit one
        # keeps — the Observation-2 motivation for extending accumulators.
        a = quantize(np.array([1.0 + 2.0**-12, 2.0**-20]), FP32)
        b = quantize(np.array([1.0 + 2.0**-12, 1.0]), FP32)
        ref = exact_dot(list(a), list(b), 0.0, FP32)
        assert bit_level_fp32_dot(a, b, acc_bits=48) == ref
        assert bit_level_fp32_dot(a, b, acc_bits=20) != ref

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            bit_level_fp32_dot(np.ones(3), np.ones(4))


class TestComplexBitLevel:
    def test_matches_value_level(self, rng):
        from repro.mxu import bit_level_fp32c_dot
        from repro.types import quantize_complex

        unit = M3XU()
        for _ in range(20):
            k = int(rng.integers(1, 5))
            a = quantize_complex(rng.normal(size=k) + 1j * rng.normal(size=k), FP32)
            b = quantize_complex(rng.normal(size=k) + 1j * rng.normal(size=k), FP32)
            c = complex(quantize_complex(np.array(rng.normal() + 1j * rng.normal()), FP32))
            bit = bit_level_fp32c_dot(a, b, c)
            val = complex(unit.mma_fp32c(a.reshape(1, -1), b.reshape(-1, 1), c)[0, 0])
            assert bit == val

    def test_i_times_i_is_minus_one(self):
        from repro.mxu import bit_level_fp32c_dot

        got = bit_level_fp32c_dot(np.array([1j]), np.array([1j]))
        assert got == -1.0 + 0.0j

    def test_pure_real_reduces_to_fp32_path(self, rng):
        from repro.mxu import bit_level_fp32c_dot
        from tests.conftest import fp32_array

        a = fp32_array(rng, (4,))
        b = fp32_array(rng, (4,))
        got = bit_level_fp32c_dot(a.astype(complex), b.astype(complex))
        assert got.imag == 0.0
        assert got.real == bit_level_fp32_dot(a, b)

    def test_shape_validation(self):
        from repro.mxu import bit_level_fp32c_dot

        with pytest.raises(ValueError):
            bit_level_fp32c_dot(np.ones(2, dtype=complex), np.ones(3, dtype=complex))
