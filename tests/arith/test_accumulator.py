"""The finite-width aligned accumulation model."""

import numpy as np
import pytest

from repro.arith import M3XU_ACC_BITS, TENSORCORE_ACC_BITS, aligned_sum
from repro.types.rounding import RoundingMode


class TestWideEnough:
    def test_float64_path_is_plain_sum(self, rng):
        p = rng.normal(size=(32, 8))
        np.testing.assert_array_equal(aligned_sum(p, acc_bits=None), p.sum(axis=-1))

    def test_48bit_exact_for_24bit_products(self, rng):
        # Products of 12-bit significands (<= 24 bits) spanning < 24 bits of
        # exponent fit a 48-bit accumulator exactly.
        sig = rng.integers(1, 1 << 24, size=(64, 4)).astype(np.float64)
        exps = rng.integers(0, 20, size=(64, 4))
        p = np.ldexp(sig, exps - 24)
        got = aligned_sum(p, acc_bits=M3XU_ACC_BITS)
        np.testing.assert_array_equal(got, p.sum(axis=-1))

    def test_narrow_width_loses_low_bits(self):
        p = np.array([[1.0, 2.0**-30]])
        wide = aligned_sum(p, acc_bits=M3XU_ACC_BITS)
        narrow = aligned_sum(p, acc_bits=TENSORCORE_ACC_BITS)
        assert wide[0] == 1.0 + 2.0**-30
        assert narrow[0] == 1.0  # shifted past the 27-bit window

    def test_truncation_vs_rne(self):
        p = np.array([[1.0, 1.5 * 2.0**-27]])
        rne = aligned_sum(p, acc_bits=27, mode=RoundingMode.NEAREST_EVEN)
        rtz = aligned_sum(p, acc_bits=27, mode=RoundingMode.TOWARD_ZERO)
        assert rne[0] >= rtz[0]

    def test_zero_group(self):
        p = np.zeros((4, 8))
        np.testing.assert_array_equal(aligned_sum(p, acc_bits=48), 0.0)


class TestAxes:
    def test_reduce_other_axis(self, rng):
        p = rng.normal(size=(5, 7, 3))
        got = aligned_sum(p, axis=1, acc_bits=None)
        np.testing.assert_allclose(got, p.sum(axis=1))

    def test_shape(self, rng):
        p = rng.normal(size=(2, 3, 4))
        assert aligned_sum(p, acc_bits=48).shape == (2, 3)


class TestSpecials:
    def test_nan_propagates(self):
        p = np.array([[1.0, np.nan, 2.0]])
        assert np.isnan(aligned_sum(p, acc_bits=48)[0])

    def test_inf_propagates(self):
        assert aligned_sum(np.array([[np.inf, 1.0]]), acc_bits=48)[0] == np.inf
        assert aligned_sum(np.array([[-np.inf, 1.0]]), acc_bits=48)[0] == -np.inf

    def test_opposing_infs_are_nan(self):
        assert np.isnan(aligned_sum(np.array([[np.inf, -np.inf]]), acc_bits=48)[0])


class TestGuards:
    def test_overflow_guard(self):
        with pytest.raises(ValueError):
            aligned_sum(np.ones((1, 1 << 14)), acc_bits=60)

    def test_large_k_ok_with_narrow_acc(self):
        p = np.ones((1, 1024))
        assert aligned_sum(p, acc_bits=40)[0] == 1024.0
