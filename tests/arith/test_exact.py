"""The arbitrary-precision reference arithmetic."""

import numpy as np
import pytest

from repro.arith import (
    chunked_dot,
    exact_dot,
    fma_round,
    round_fraction,
    sequential_fma_dot,
    to_fraction,
)
from repro.types import FP16, FP32, FP64, quantize
from repro.types.rounding import RoundingMode


class TestRoundFraction:
    def test_matches_numpy_fp32_cast(self, rng):
        for v in rng.normal(size=200) * 10.0 ** rng.uniform(-20, 20, 200):
            assert round_fraction(to_fraction(v), FP32) == float(np.float32(v))

    def test_matches_numpy_fp16_cast(self, rng):
        for v in rng.normal(size=200):
            assert round_fraction(to_fraction(v), FP16) == float(np.float16(v))

    def test_overflow_to_inf(self):
        assert round_fraction(to_fraction(1e39), FP32) == np.inf
        assert round_fraction(to_fraction(-1e39), FP32) == -np.inf

    def test_truncation_saturates(self):
        got = round_fraction(to_fraction(1e39), FP32, RoundingMode.TOWARD_ZERO)
        assert got == FP32.max_value

    def test_subnormal_rounding(self):
        v = FP32.min_subnormal * 1.4
        assert round_fraction(to_fraction(v), FP32) == FP32.min_subnormal

    def test_zero(self):
        assert round_fraction(to_fraction(0.0), FP32) == 0.0

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            to_fraction(np.inf)

    def test_round_fraction_float_path_exact(self, rng):
        """Regression for the allowlisted float arithmetic in
        ``round_fraction`` (lint rule PS101, ``repro/arith/exact.py``).

        The final ``float(sign) * float(q) * 2.0**grid_exp`` is claimed
        exact: q fits in 53 bits, the scale is a power of two, and the
        product is representable in the target format. Cross-check the
        whole function against a pure-Fraction tail that converts to
        float only once, on an exactly-representable value.
        """
        from fractions import Fraction

        def pure_tail(value, fmt, mode=RoundingMode.NEAREST_EVEN):
            sign = -1 if value < 0 else 1
            mag = abs(value)
            e = mag.numerator.bit_length() - mag.denominator.bit_length()
            if mag >= Fraction(2) ** (e + 1):
                e += 1
            elif mag < Fraction(2) ** e:
                e -= 1
            grid_exp = max(e, fmt.emin) - fmt.mantissa_bits
            scaled = mag / Fraction(2) ** grid_exp
            q, r = divmod(scaled.numerator, scaled.denominator)
            d = scaled.denominator
            if mode is RoundingMode.NEAREST_EVEN and (
                2 * r > d or (2 * r == d and q % 2 == 1)
            ):
                q += 1
            exact = Fraction(sign) * q * Fraction(2) ** grid_exp
            result = float(exact)  # lossless: representable in fmt ⊆ float64
            assert Fraction(result) == exact
            if abs(result) > fmt.max_value:
                if mode is RoundingMode.NEAREST_EVEN:
                    return float(np.copysign(np.inf, sign))
                return float(np.copysign(fmt.max_value, sign))
            return result

        # Boundary-heavy battery: binade edges, ties, subnormal floor,
        # mantissa all-ones (round-up crosses a binade), plus noise.
        cases = [
            2.0**-126, 2.0**-126 * 1.5, FP32.min_subnormal * 0.5,
            FP32.min_subnormal * 1.5, FP32.max_value * (1 - 2.0**-25),
            1.0 + 2.0**-24, 1.0 + 2.0**-23, 2.0 - 2.0**-24,
            65504.0 * (1 + 2.0**-12), -3.0000000001,
        ]
        cases += list(rng.normal(size=100) * 10.0 ** rng.uniform(-30, 30, 100))
        for fmt in (FP16, FP32, FP64):
            for mode in (RoundingMode.NEAREST_EVEN, RoundingMode.TOWARD_ZERO):
                for v in cases:
                    frac = to_fraction(v)
                    assert round_fraction(frac, fmt, mode) == pure_tail(
                        frac, fmt, mode
                    ), (v, fmt.name, mode)


class TestExactDot:
    def test_single_element_is_fma(self, rng):
        a, b, c = (float(quantize(np.array(rng.normal()), FP32)) for _ in range(3))
        assert exact_dot([a], [b], c, FP32) == fma_round(a, b, c, FP32)

    def test_cancellation_handled_exactly(self):
        # (1 + eps)*(1) + (-1)*(1) = eps exactly; any naive FP32 chain
        # computing (1+eps) + (-1) would still get eps here, but with a
        # large c the exact path differs.
        eps = 2.0**-23
        got = exact_dot([1.0 + eps, -1.0], [1.0, 1.0], 0.0, FP32)
        assert got == eps

    def test_correct_rounding_beats_chain(self, rng):
        # The exact dot is within half an ulp; a long FMA chain is not.
        k = 64
        a = quantize(rng.normal(size=k), FP32)
        b = quantize(rng.normal(size=k), FP32)
        exact = exact_dot(list(a), list(b), 0.0, FP32)
        f64 = float(np.float32(np.dot(a, b)))
        # The exact result equals the float64-then-round result here
        # (float64 has 29 spare bits over FP32 for K=64 sums).
        assert exact == pytest.approx(f64, rel=2.0**-22)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_dot([1.0, 2.0], [1.0], 0.0, FP32)


class TestSequentialFma:
    def test_order_dependence(self):
        # Sequential FP32 FMA is order-dependent; exact_dot is not.
        big, small = 2.0**13, 2.0**-11
        a1 = [big, small, -big]
        a2 = [big, -big, small]
        ones = [1.0, 1.0, 1.0]
        r1 = sequential_fma_dot(a1, ones, 0.0, FP32)
        r2 = sequential_fma_dot(a2, ones, 0.0, FP32)
        assert r2 == small
        # r1 lost `small` when it was absorbed into `big`:
        assert r1 != r2

    def test_matches_numpy_float32_loop(self, rng):
        k = 32
        a = quantize(rng.normal(size=k), FP32)
        b = quantize(rng.normal(size=k), FP32)
        acc = np.float32(0.0)
        for x, y in zip(a, b):
            # float32 FMA modelled as exact product + rounded add (the
            # products here fit float32's ability to be recovered after
            # one rounding of the double-precision sum).
            acc = np.float32(np.float64(acc) + np.float64(x) * np.float64(y))
        ours = sequential_fma_dot(list(a), list(b), 0.0, FP32)
        assert ours == pytest.approx(float(acc), rel=2.0**-22)


class TestChunkedDot:
    def test_chunk_full_length_equals_exact(self, rng):
        k = 16
        a = list(quantize(rng.normal(size=k), FP32))
        b = list(quantize(rng.normal(size=k), FP32))
        assert chunked_dot(a, b, 0.0, k, FP64, FP32) == exact_dot(a, b, 0.0, FP32)

    def test_chunk1_equals_fma_chain(self, rng):
        k = 12
        a = list(quantize(rng.normal(size=k), FP32))
        b = list(quantize(rng.normal(size=k), FP32))
        assert chunked_dot(a, b, 0.0, 1, FP32, FP32) == sequential_fma_dot(
            a, b, 0.0, FP32
        )

    def test_wider_acc_no_worse(self, rng):
        k = 64
        a = list(quantize(rng.normal(size=k), FP32))
        b = list(quantize(rng.normal(size=k), FP32))
        ref = exact_dot(a, b, 0.0, FP64)
        err32 = abs(chunked_dot(a, b, 0.0, 8, FP32, FP32) - ref)
        err64 = abs(chunked_dot(a, b, 0.0, 8, FP64, FP32) - ref)
        assert err64 <= err32 + 1e-30

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            chunked_dot([1.0], [1.0], 0.0, 0, FP32, FP32)
