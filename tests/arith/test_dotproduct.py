"""Vectorised dot-product-unit and FMA-chain models vs the exact reference."""

import numpy as np
import pytest

from repro.arith import (
    dot_product_unit,
    exact_dot,
    fma_chain_dot,
    pairwise_tree_dot,
    sequential_fma_dot,
)
from repro.types import FP16, FP32, quantize


class TestDotProductUnit:
    def test_matches_exact_reference(self, rng):
        k = 8
        a = quantize(rng.normal(size=(16, k)), FP16)
        b = quantize(rng.normal(size=(16, k)), FP16)
        c = quantize(rng.normal(size=16), FP32)
        got = dot_product_unit(a, b, c, out_fmt=FP32)
        for i in range(16):
            ref = exact_dot(list(a[i]), list(b[i]), float(c[i]), FP32)
            assert got[i] == ref

    def test_split_fp32_inputs_accepted(self, rng):
        from repro.types import split_fp32_m3xu

        x = quantize(rng.normal(size=(4, 8)), FP32)
        hi, lo = split_fp32_m3xu(x)
        # 12-bit parts pass the width guard.
        dot_product_unit(hi, lo, 0.0, out_fmt=FP32, check_inputs=True)

    def test_width_guard_rejects_full_fp64(self, rng):
        x = rng.normal(size=(4, 8))  # 53-bit significands
        with pytest.raises(ValueError):
            dot_product_unit(x, x, 0.0, out_fmt=FP32, check_inputs=True)

    def test_c_outside_wide_sum_double_rounds(self):
        # With c excluded from the wide sum the result can differ by the
        # extra FP32 rounding.
        a = np.array([[1.0, 2.0**-12]])
        b = np.array([[1.0, 1.0]])
        c = 2.0**-24
        inside = dot_product_unit(a, b, c, out_fmt=FP32, include_c_in_wide_sum=True)
        outside = dot_product_unit(a, b, c, out_fmt=FP32, include_c_in_wide_sum=False)
        assert inside.shape == outside.shape == (1,)

    def test_finite_acc_bits_plumbed(self):
        a = np.array([[1.0, 2.0**-20]])
        b = np.array([[1.0, 1.0]])
        wide = dot_product_unit(a, b, 0.0, out_fmt=FP32, acc_bits=None)
        narrow = dot_product_unit(a, b, 0.0, out_fmt=FP32, acc_bits=16)
        assert wide[0] == 1.0 + 2.0**-20
        assert narrow[0] == 1.0


class TestFmaChain:
    def test_matches_scalar_reference(self, rng):
        k = 16
        a = quantize(rng.normal(size=(8, k)), FP32)
        b = quantize(rng.normal(size=(8, k)), FP32)
        got = fma_chain_dot(a, b, 0.0, FP32)
        for i in range(8):
            assert got[i] == sequential_fma_dot(list(a[i]), list(b[i]), 0.0, FP32)

    def test_broadcasting(self, rng):
        a = quantize(rng.normal(size=(4, 1, 8)), FP32)
        b = quantize(rng.normal(size=(1, 5, 8)), FP32)
        assert fma_chain_dot(a, b, 0.0, FP32).shape == (4, 5)

    def test_c_is_quantized(self):
        got = fma_chain_dot(
            np.array([[1.0]]), np.array([[0.0]]), 1.0 + 2.0**-30, FP32
        )
        assert got[0] == 1.0


class TestPairwiseTree:
    def test_matches_exact_for_short(self, rng):
        a = quantize(rng.normal(size=(8, 2)), FP32)
        b = quantize(rng.normal(size=(8, 2)), FP32)
        got = pairwise_tree_dot(a, b, FP32)
        for i in range(8):
            ref = float(
                np.float32(
                    np.float32(a[i, 0] * b[i, 0]) + np.float32(a[i, 1] * b[i, 1])
                )
            )
            assert got[i] == pytest.approx(ref, rel=2**-22)

    def test_odd_lengths(self, rng):
        a = quantize(rng.normal(size=(4, 7)), FP32)
        b = quantize(rng.normal(size=(4, 7)), FP32)
        got = pairwise_tree_dot(a, b, FP32)
        assert got.shape == (4,)
        np.testing.assert_allclose(got, np.sum(a * b, axis=-1), rtol=1e-5)

    def test_tree_less_error_than_chain_long_k(self, rng):
        # log2(K) vs K error growth: statistical, use many dots.
        k = 512
        a = quantize(np.abs(rng.normal(size=(64, k))) + 0.1, FP32)
        b = quantize(np.abs(rng.normal(size=(64, k))) + 0.1, FP32)
        ref = np.sum(a * b, axis=-1)
        chain = fma_chain_dot(a, b, 0.0, FP32)
        tree = pairwise_tree_dot(a, b, FP32)
        assert np.mean(np.abs(tree - ref)) < np.mean(np.abs(chain - ref))
