"""Known-bad: parallel task mutates a module global through a helper
(FS304) — one hop deeper than FS302 can see."""

from repro.parallel import parallel_map

_CACHE = {}


def _memo(x):
    _CACHE[x] = x * x
    return _CACHE[x]


def task(x):
    return _memo(x)


def run(items):
    return parallel_map(task, items, timeout=5.0)
