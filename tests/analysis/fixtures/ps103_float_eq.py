"""Fixture: PS103 — float equality against an inexact literal."""


def check(x: float) -> bool:
    if x == 0.1:  # line 5: PS103 (0.1 is not representable)
        return True
    if x != 1e-6:  # line 7: PS103
        return False
    return x == 0.25 or x == 0.0  # exact literals: no finding
