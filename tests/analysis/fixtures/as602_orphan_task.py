"""Known-bad: ``create_task`` handle neither awaited nor stored (AS602)."""

import asyncio


async def job():
    await asyncio.sleep(0)


async def main():
    asyncio.create_task(job())
    await asyncio.sleep(0)
