"""Fixture: DT202 — legacy global numpy random state."""

import numpy as np


def noise(n: int) -> np.ndarray:
    np.random.seed(0)  # line 7: DT202 (global state, not a Generator)
    return np.random.rand(n)  # line 8: DT202
