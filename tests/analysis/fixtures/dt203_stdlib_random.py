"""Fixture: DT203 — stdlib random module-level state / unseeded Random."""

import random
from random import Random


def jitter() -> float:
    r = Random()  # line 8: DT203 (unseeded instance)
    return r.random() + random.uniform(0.0, 1.0)  # line 9: DT203


def seeded_jitter(seed: int) -> float:
    return Random(seed).random()  # seeded: no finding
