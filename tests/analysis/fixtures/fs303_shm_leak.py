"""Fixture: FS303 — SharedMemory without a paired release path."""

from multiprocessing.shared_memory import SharedMemory


def leaky(n: int) -> bytes:
    seg = SharedMemory(create=True, size=n)  # line 7: FS303
    data = bytes(seg.buf[:n])
    seg.close()  # plain close: not on the unwind path, still leaks on raise
    return data


def tracked(n: int, registry: list) -> None:
    seg = SharedMemory(create=True, size=n)
    registry.append(seg)  # ownership transferred: no finding


def guarded(n: int) -> bytes:
    seg = SharedMemory(create=True, size=n)
    try:
        return bytes(seg.buf[:n])
    finally:
        seg.close()  # released on unwind: no finding


def escapes(n: int) -> SharedMemory:
    return SharedMemory(create=True, size=n)  # returned: no finding
