"""Fixture: RH403 — broad except that silently swallows the failure."""


def cleanup(handle: object) -> None:
    try:
        handle.close()  # type: ignore[attr-defined]
    except Exception:  # line 7: RH403
        pass


def cleanup_logged(handle: object, log: list) -> None:
    try:
        handle.close()  # type: ignore[attr-defined]
    except Exception as exc:  # handler does something: no finding
        log.append(exc)
