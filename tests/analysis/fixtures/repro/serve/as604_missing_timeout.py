"""Known-bad: serve-side pool fan-out that drops the deadline (AS604)."""

from repro.parallel import parallel_map


def _task(x):
    return x + 1


def handle(items):
    return parallel_map(_task, items)
