"""Known-bad: counter mutated from both the event loop and the executor
thread with no lock anywhere (AS603)."""

import asyncio


class Stats:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1

    async def tick(self):
        self.count += 1


async def run():
    stats = Stats()
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, stats.bump)
    await stats.tick()
