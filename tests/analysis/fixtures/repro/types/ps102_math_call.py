"""Fixture: PS102 — rounding math.* call in a bit-exact module."""

import math


def hypotenuse(a: float, b: float) -> float:
    return math.sqrt(a * a + b * b)  # line 7: PS102


def tiles(m: int, d: int) -> int:
    return math.ceil(m / d)  # integer-exact helper: no finding
