"""Fixture: PS101 — bare float() arithmetic in a bit-exact module."""


def scale(sig: int, weight: float) -> float:
    bad = float(sig) * weight  # line 5: PS101
    also_bad = weight + float(sig)  # line 6: PS101
    fine = float(sig)  # plain cast outside arithmetic: no finding
    return bad + also_bad + fine


def allowed(sig: int) -> float:
    # repro: allow[PS101] exactness proven elsewhere
    return float(sig) * 2.0
