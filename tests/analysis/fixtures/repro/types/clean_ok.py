"""Fixture: a clean bit-exact module — every rule must stay silent."""

import math

import numpy as np

_HALF = 0.5


def quantize_step(mantissa: int, exponent: int) -> int:
    return mantissa << min(exponent, 40)


def tiles(m: int, block: int) -> int:
    return math.ceil(m / block)


def is_zero(x: float) -> bool:
    return x == 0.0


def container(values: list[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def sample(seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(seed).random(n)
