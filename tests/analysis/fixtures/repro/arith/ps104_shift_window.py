"""Fixture: PS104 — shift amounts escaping the accumulation window."""

_SLICE_BITS = 12
_HH_SHIFT = 2 * _SLICE_BITS

# weight_shift 30 + 24-bit product > 48-bit window: finding on the tuple.
bad_schedule = [
    (0, 0, 30),  # line 8: PS104
    (1, 1, 0),
    (0, 1, _SLICE_BITS),
]

good_schedule = [
    (0, 0, _HH_SHIFT),  # 24 + 24 == 48: fits exactly, no finding
    (1, 1, 0),
]


def overshift(value: int) -> int:
    return value << 64  # line 20: PS104 (escapes the int64 adder model)
