"""Fixture: PS105 — native float32/float16 casts in a bit-exact module."""

import numpy as np


def demote(x: np.ndarray) -> np.ndarray:
    y = x.astype(np.float32)  # line 7: PS105
    z = np.asarray(x, dtype="float16")  # line 8: PS105
    w = np.float32(1.5)  # line 9: PS105
    return y + z + w


def fine(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)  # the container dtype: no finding
