"""Known-bad: an exact windowed sum collapsed with ``float()`` (XF501).

The exact value crosses a helper boundary first — the per-function
PS1xx rules cannot see this; the interprocedural flow pass must.
"""

from repro.arith.accumulator import aligned_sum_groups


def _reduce(groups):
    return aligned_sum_groups(groups, acc_bits=48)


def collapse(groups):
    wide = _reduce(groups)
    return float(wide)
