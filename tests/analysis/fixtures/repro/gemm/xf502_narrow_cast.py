"""Known-bad: exact significand fields narrowed with ``astype`` (XF502)."""

import numpy as np

from repro.mxu.vectorized import split_fp32_fields


def _fields(x):
    return split_fp32_fields(x)


def narrow(x):
    sign, hi, lo = _fields(x)
    return hi.astype(np.float32)
