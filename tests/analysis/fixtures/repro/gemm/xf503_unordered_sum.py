"""Known-bad: lane products reduced with ``np.sum`` (XF503).

Float summation order changes the result; the datapath's reduction is
the shift-aligned windowed accumulate, never a native sum.
"""

import numpy as np

from repro.mxu.dataflow import lane_products


def _products(a_parts, b_parts, mode):
    return lane_products(a_parts, b_parts, mode)


def reduce_lanes(a_parts, b_parts, mode):
    prods = _products(a_parts, b_parts, mode)
    return np.sum(prods["acc0"], axis=-1)
