"""Known-bad: native division on an exact dot product (XF505)."""

from repro.arith.exact import exact_dot


def _dot(a, b):
    return exact_dot(a, b)


def normalize(a, b, scale):
    acc = _dot(a, b)
    return acc / scale
