"""Known-bad: non-RNE rounding of an exact window sum (XF504)."""

import numpy as np

from repro.arith.accumulator import aligned_sum


def _window(addends):
    return aligned_sum(addends, acc_bits=48)


def truncate(addends):
    wide = _window(addends)
    return np.trunc(wide)
