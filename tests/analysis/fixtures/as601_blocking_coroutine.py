"""Known-bad: coroutine reaches blocking ``open()`` via a sync helper
without an executor hop (AS601)."""


def _load(path):
    with open(path) as fh:
        return fh.read()


async def handle(path):
    return _load(path)
