"""Known-bad: coroutine called like a plain function (AS605)."""

import asyncio


async def warmup():
    await asyncio.sleep(0)


async def main():
    warmup()
    await asyncio.sleep(0)
