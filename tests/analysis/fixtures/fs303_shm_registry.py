"""Fixture: FS303 — keyed-registry ownership transfer variants."""

from multiprocessing.shared_memory import SharedMemory

_REGISTRY: dict = {}


class Entry:
    def __init__(self, seg, nbytes: int) -> None:
        self.seg = seg
        self.nbytes = nbytes


def leaky_lookalike(key: str, n: int) -> None:
    seg = SharedMemory(create=True, size=n)  # line 15: FS303
    _REGISTRY[key] = n  # stores the size, not the segment: still leaks


def subscript_tracked(key: str, n: int) -> None:
    seg = SharedMemory(create=True, size=n)
    _REGISTRY[key] = seg  # ownership transferred to the registry


def wrapped_tracked(key: str, n: int) -> None:
    seg = SharedMemory(create=True, size=n)
    _REGISTRY[key] = Entry(seg, n)  # wrapped in a record: still tracked


def wrapped_kwarg_tracked(key: str, n: int) -> None:
    seg = SharedMemory(create=True, size=n)
    _REGISTRY[key] = Entry(nbytes=n, seg=seg)  # keyword arg counts too
