"""Fixture: DT201 — unseeded numpy Generator construction."""

import numpy as np


def sample(n: int) -> np.ndarray:
    rng = np.random.default_rng()  # line 7: DT201
    other = np.random.default_rng(seed=None)  # line 8: DT201
    good = np.random.default_rng(2024)  # seeded: no finding
    return rng.random(n) + other.random(n) + good.random(n)
