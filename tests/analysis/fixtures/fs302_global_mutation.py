"""Fixture: FS302 — parallel task mutates module-level state."""

from repro.parallel import parallel_map

_RESULTS: list[int] = []
_TOTALS = {}


def task(x: int) -> int:
    global _COUNT  # line 10: FS302
    _RESULTS.append(x)  # line 11: FS302
    _TOTALS[x] = x * x  # line 12: FS302
    return x


def clean_task(x: int) -> int:
    local: list[int] = []
    local.append(x)  # local list: no finding
    return sum(local)


def run(items: list[int]) -> list[int]:
    out = parallel_map(task, items)
    out += parallel_map(clean_task, items)
    return out
