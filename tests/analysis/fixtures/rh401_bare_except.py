"""Fixture: RH401 — bare except (autofixable)."""


def load(path: str) -> str:
    try:
        with open(path) as fh:
            return fh.read()
    except:  # line 8: RH401
        return ""


def load_guarded(path: str) -> str:
    try:
        with open(path) as fh:
            return fh.read()
    except OSError:  # narrowed: no finding
        return ""
