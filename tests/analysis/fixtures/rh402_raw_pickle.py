"""Fixture: RH402 — raw pickle.load outside the corruption wrappers."""

import pickle


def read_blob(path: str) -> object:
    with open(path, "rb") as fh:
        return pickle.load(fh)  # line 8: RH402


def read_bytes(blob: bytes) -> object:
    return pickle.loads(blob)  # line 12: RH402
