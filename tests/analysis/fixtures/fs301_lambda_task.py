"""Fixture: FS301 — unpicklable callables handed to parallel_map."""

from repro.parallel import parallel_map


def _square(x: int) -> int:
    return x * x


def run(items: list[int]) -> list[int]:
    bad = parallel_map(lambda x: x * x, items)  # line 11: FS301

    def local_square(x: int) -> int:
        return x * x

    also_bad = parallel_map(local_square, items)  # line 16: FS301
    fine = parallel_map(_square, items)  # module-level fn: no finding
    return bad + also_bad + fine
