"""`repro lint` CLI contract: exit codes, --json, --list-rules, --fix."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

ALL_FIXTURES = sorted(
    p.relative_to(FIXTURES).as_posix()
    for p in FIXTURES.rglob("*.py")
    if p.name != "clean_ok.py"
)


def test_lint_src_exits_zero(capsys):
    """Acceptance: `repro lint src/` exits 0 on the shipped tree."""
    assert main(["lint", str(REPO / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


@pytest.mark.parametrize("rel", ALL_FIXTURES)
def test_lint_each_fixture_exits_nonzero(rel, capsys):
    """Acceptance: every known-bad fixture fails the lint gate with a
    file:line:rule-id finding on stdout."""
    path = FIXTURES / rel
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    rule_id = Path(rel).name.split("_")[0].upper()
    assert f"{rule_id} error:" in out
    assert any(
        line.startswith(str(path)) and f": {rule_id} " in line
        for line in out.splitlines()
    )


def test_lint_clean_fixture_exits_zero(capsys):
    assert main(["lint", str(FIXTURES / "repro/types/clean_ok.py")]) == 0


def test_missing_path_is_usage_error(capsys):
    assert main(["lint", str(FIXTURES / "does_not_exist.py")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("PS101", "PS105", "DT201", "FS303", "RH403"):
        assert rule_id in out
    assert "precision" in out and "fork-safety" in out


def test_json_output(capsys):
    assert main(["lint", "--json", str(FIXTURES / "rh402_raw_pickle.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    rules = [f["rule_id"] for f in payload["findings"]]
    assert rules == ["RH402", "RH402"]
    assert payload["findings"][0]["line"] == 8


def test_json_reports_effective_severity(tmp_path, capsys):
    """A config severity override must show up in --json output (CI
    dashboards have to match exit-code behavior, not registry defaults)."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint.severity]\nRH402 = \"warning\"\n", encoding="utf-8"
    )
    target = tmp_path / "f.py"
    target.write_text(
        "import pickle\n\ndef f(b):\n    return pickle.loads(b)\n",
        encoding="utf-8",
    )
    assert main(["lint", "--json", str(target)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 0
    assert [f["severity"] for f in payload["findings"]] == ["warning"]


def test_graph_flag_dumps_call_graph(tmp_path, capsys):
    out = tmp_path / "graph.json"
    assert main(
        ["lint", "--graph", str(out), str(FIXTURES / "repro/types/clean_ok.py")]
    ) == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert set(payload) == {"modules", "functions", "edges"}
    assert "call graph written" in capsys.readouterr().err


def test_sarif_flag_writes_sarif(tmp_path, capsys):
    out = tmp_path / "lint.sarif"
    assert main(
        ["lint", "--sarif", str(out), str(FIXTURES / "rh402_raw_pickle.py")]
    ) == 1
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["RH402", "RH402"]
    assert all(r["level"] == "error" for r in results)
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 8


def test_fix_flag_applies_and_relints(tmp_path, capsys):
    out = tmp_path / "rh401.py"
    out.write_text(
        "def f(p):\n"
        "    try:\n"
        "        return open(p).read()\n"
        "    except:\n"
        "        return ''\n",
        encoding="utf-8",
    )
    assert main(["lint", "--fix", str(out)]) == 0
    assert "except Exception:" in out.read_text(encoding="utf-8")


def test_parse_error_exits_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main(["lint", str(bad)]) == 1
    assert "parse error" in capsys.readouterr().out
