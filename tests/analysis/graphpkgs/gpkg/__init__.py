"""Adversarial call-graph fixture package (re-export chain)."""

from .alpha import ping

__all__ = ["ping"]
