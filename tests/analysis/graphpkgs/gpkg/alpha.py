"""One half of a deliberate import cycle, plus self-method dispatch."""

from . import beta


def ping(n):
    if n <= 0:
        return 0
    return beta.pong(n - 1)


class Engine:
    def __init__(self):
        self.steps = 0

    def helper(self, n):
        self.steps += 1
        return n

    def run(self, n):
        return self.helper(n)
