"""Other half of the cycle; imports through an ``as`` alias."""

from .alpha import ping as bounce


def pong(n):
    return bounce(n)
