"""A function handed *as a value* into the pool entrypoint."""

from repro.parallel import parallel_map


def work(x):
    return x * x


def fan_out(items):
    return parallel_map(work, items, timeout=5.0)
