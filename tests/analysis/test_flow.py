"""Interprocedural exactness-flow coverage.

Two layers: the checked-in cross-module fixture package under
``flowpkgs`` (helper in one module, lossy sink in another — one sink per
XF rule), and the seeded-mutation acceptance checks that prove the
analyzer catches the exact regressions it exists for (a deleted
``timeout=`` propagation in ``repro.serve`` and a ``float()`` cast
slipped into a ``repro.mxu`` helper).
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_file, lint_paths

FLOWPKGS = Path(__file__).parent / "flowpkgs"
REPO = Path(__file__).resolve().parents[2]


class TestCrossModuleTaint:
    @pytest.fixture(scope="class")
    def report(self):
        return lint_paths([FLOWPKGS], LintConfig())

    def test_each_xf_rule_fires_exactly_once_across_modules(self, report):
        found = [(f.rule_id, f.line) for f in report.findings]
        assert found == [
            ("XF501", 9),
            ("XF502", 13),
            ("XF503", 17),
            ("XF504", 21),
            ("XF505", 25),
        ]
        assert all(f.path.endswith("sinks.py") for f in report.findings)

    def test_origin_cites_the_helper_module(self, report):
        for finding in report.findings:
            # The taint entered the program one module away: the message
            # must name the source call and its file so the report is
            # actionable without re-running the analysis.
            assert "aligned_sum_groups()" in finding.message
            assert "helpers.py" in finding.message
            assert "reduce_exact()" in finding.message


class TestSanitizer:
    def test_quantize_ends_the_taint(self, tmp_path):
        pkg = tmp_path / "repro" / "gemm"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        mod = pkg / "ok.py"
        mod.write_text(
            "from repro.arith.accumulator import aligned_sum_groups\n"
            "from repro.types.quantize import quantize\n"
            "\n"
            "\n"
            "def helper(groups):\n"
            "    return aligned_sum_groups(groups, acc_bits=48)\n"
            "\n"
            "\n"
            "def finish(groups, fmt):\n"
            "    q = quantize(helper(groups), fmt)\n"
            "    return float(q)\n",
            encoding="utf-8",
        )
        assert lint_file(mod, LintConfig()) == []


def _copy_into_package(src: Path, tmp_path: Path, *parts: str) -> Path:
    """Copy a shipped source file into a ``repro/...`` package skeleton so
    scope gating (path fragments) and relative imports resolve."""
    pkg = tmp_path.joinpath(*parts)
    pkg.mkdir(parents=True)
    for depth in range(1, len(parts) + 1):
        (tmp_path.joinpath(*parts[:depth]) / "__init__.py").write_text(
            "", encoding="utf-8"
        )
    dest = pkg / src.name
    shutil.copy(src, dest)
    return dest


class TestSeededMutations:
    """Acceptance: known regressions must produce >=1 finding."""

    def test_pristine_copies_lint_clean(self, tmp_path):
        for rel, parts in (
            ("src/repro/serve/server.py", ("repro", "serve")),
            ("src/repro/mxu/fused.py", ("repro", "mxu")),
        ):
            dest = _copy_into_package(REPO / rel, tmp_path / parts[-1], *parts)
            assert lint_file(dest, LintConfig()) == []

    def test_deleting_timeout_propagation_is_caught(self, tmp_path):
        dest = _copy_into_package(
            REPO / "src/repro/serve/server.py", tmp_path, "repro", "serve"
        )
        source = dest.read_text(encoding="utf-8")
        # Drop the deadline from _run_single's pool fan-out (the last
        # `timeout=remaining,` in the file) — a hung worker would now
        # hang the request forever instead of being killed.
        idx = source.rfind("timeout=remaining,")
        assert idx != -1, "server.py no longer propagates timeout=remaining"
        dest.write_text(
            source[:idx] + source[idx + len("timeout=remaining,"):],
            encoding="utf-8",
        )
        rules = [f.rule_id for f in lint_file(dest, LintConfig())]
        assert "AS604" in rules

    def test_inserting_float_cast_into_mxu_helper_is_caught(self, tmp_path):
        dest = _copy_into_package(
            REPO / "src/repro/mxu/fused.py", tmp_path, "repro", "mxu"
        )
        dest.write_text(
            dest.read_text(encoding="utf-8")
            + "\n\ndef _mutant(groups):\n"
            "    wide = aligned_sum_groups(groups, acc_bits=48)\n"
            "    return float(wide)\n",
            encoding="utf-8",
        )
        findings = lint_file(dest, LintConfig())
        assert "XF501" in [f.rule_id for f in findings]
