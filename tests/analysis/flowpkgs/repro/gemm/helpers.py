"""Cross-module exactness-flow fixture: the helper that launders taint.

``reduce_exact`` returns a value straight out of the bit-exact domain;
every lossy sink lives one *module* away in ``sinks.py``, so only the
interprocedural summary pass can connect them.
"""

from repro.arith.accumulator import aligned_sum_groups


def reduce_exact(groups):
    return aligned_sum_groups(groups, acc_bits=48)
