"""Known-bad cross-module sinks: one per XF rule, helper in helpers.py."""

import numpy as np

from .helpers import reduce_exact


def to_native_float(groups):
    return float(reduce_exact(groups))


def narrow_cast(groups):
    return np.float32(reduce_exact(groups))


def unordered_resum(groups):
    return sum(reduce_exact(groups))


def floor_round(groups):
    return np.floor(reduce_exact(groups))


def lossy_scale(groups):
    return reduce_exact(groups) / 3.0
