"""Call-graph construction on adversarial shapes.

The fixture package under ``graphpkgs/gpkg`` bakes in the shapes the
satellite list calls out: a genuine import cycle (``alpha`` <->
``beta``), ``from x import y as z`` aliasing, methods dispatched through
``self``, a package ``__init__`` re-export chain, and a function passed
*as a value* into ``parallel_map``.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.context import build_context
from repro.analysis.graph import ProjectContext, build_project, module_name_for

GRAPHPKGS = Path(__file__).parent / "graphpkgs"


@pytest.fixture(scope="module")
def project() -> ProjectContext:
    contexts = []
    for path in sorted(GRAPHPKGS.rglob("*.py")):
        contexts.append(
            build_context(str(path), path.as_posix(), path.read_text(encoding="utf-8"))
        )
    return build_project(contexts, entrypoints=("parallel_map",))


class TestModuleNames:
    def test_package_module_names_from_disk_layout(self):
        assert module_name_for(GRAPHPKGS / "gpkg" / "alpha.py") == "gpkg.alpha"
        assert module_name_for(GRAPHPKGS / "gpkg" / "__init__.py") == "gpkg"

    def test_bare_script_resolves_to_stem(self, tmp_path):
        script = tmp_path / "standalone.py"
        script.write_text("x = 1\n", encoding="utf-8")
        assert module_name_for(script) == "standalone"


class TestCyclicImports:
    def test_all_modules_and_defs_collected_despite_cycle(self, project):
        assert {"gpkg", "gpkg.alpha", "gpkg.beta", "gpkg.fan"} <= set(project.modules)
        assert "gpkg.alpha.ping" in project.functions
        assert "gpkg.beta.pong" in project.functions

    def test_reachability_terminates_on_cycle(self, project):
        reached = project.reachable(["gpkg.alpha.ping"])
        # ping -> pong -> ping: the cycle is walked once, not forever.
        assert set(reached) == {"gpkg.alpha.ping", "gpkg.beta.pong"}
        assert reached["gpkg.beta.pong"] == ("gpkg.alpha.ping", "gpkg.beta.pong")


class TestAliasedImports:
    def test_import_as_alias_resolves_to_target(self, project):
        assert project.import_map["gpkg.beta"]["bounce"] == "gpkg.alpha.ping"

    def test_call_through_alias_becomes_edge(self, project):
        callees = [s.callee for s in project.edges_from("gpkg.beta.pong")]
        assert callees == ["gpkg.alpha.ping"]

    def test_init_reexport_chased_to_definition(self, project):
        assert project.canonical("gpkg.ping") == "gpkg.alpha.ping"


class TestSelfDispatch:
    def test_method_call_through_self_resolves(self, project):
        callees = [s.callee for s in project.edges_from("gpkg.alpha.Engine.run")]
        assert callees == ["gpkg.alpha.Engine.helper"]

    def test_method_info_carries_owning_class(self, project):
        info = project.function("gpkg.alpha.Engine.helper")
        assert info is not None and info.is_method
        assert info.cls == "gpkg.alpha.Engine"


class TestTaskEdges:
    def test_function_passed_into_parallel_map_is_task_edge(self, project):
        edges = project.edges_from("gpkg.fan.fan_out")
        kinds = {(s.callee, s.kind) for s in edges}
        assert ("gpkg.fan.work", "task") in kinds
        assert ("repro.parallel.parallel_map", "call") in kinds

    def test_task_edges_not_walked_as_calls(self, project):
        reached = project.reachable(["gpkg.fan.fan_out"], kinds=("call",))
        assert "gpkg.fan.work" not in reached
        reached = project.reachable(["gpkg.fan.fan_out"], kinds=("call", "task"))
        assert "gpkg.fan.work" in reached


class TestExport:
    def test_to_json_round_trips(self, project):
        payload = json.loads(project.to_json())
        assert set(payload) == {"modules", "functions", "edges"}
        quals = {n["qual"] for n in payload["functions"]}
        assert "gpkg.alpha.Engine.run" in quals
        assert any(
            e["caller"] == "gpkg.fan.fan_out" and e["kind"] == "task"
            for e in payload["edges"]
        )
