"""Engine-level behavior: config, suppression, severities, autofix."""

from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    Severity,
    all_rules,
    apply_fixes,
    get_rule,
    lint_file,
    lint_paths,
    load_config,
)
from repro.analysis.findings import Finding

FIXTURES = Path(__file__).parent / "fixtures"


class TestRegistry:
    def test_all_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        assert set(ids) == {
            "PS101", "PS102", "PS103", "PS104", "PS105",
            "DT201", "DT202", "DT203",
            "FS301", "FS302", "FS303", "FS304",
            "RH401", "RH402", "RH403",
            "XF501", "XF502", "XF503", "XF504", "XF505",
            "AS601", "AS602", "AS603", "AS604", "AS605",
        }

    def test_rules_carry_pack_and_summary(self):
        for rule in all_rules():
            assert rule.pack and rule.summary
            assert rule.default_severity is Severity.ERROR

    def test_get_rule_round_trips(self):
        assert get_rule("RH401").fixable
        with pytest.raises(KeyError):
            get_rule("XX999")


class TestConfig:
    def test_load_config_reads_pyproject(self):
        cfg = load_config(FIXTURES)
        assert "repro/types/" in cfg.bit_exact
        assert cfg.acc_window_bits == 48 and cfg.slice_bits == 12

    def test_acc_window_parsed_from_accumulator_source(self):
        from repro.arith.accumulator import M3XU_ACC_BITS

        assert load_config(FIXTURES).acc_window_bits == M3XU_ACC_BITS

    def test_defaults_without_pyproject(self, tmp_path):
        cfg = load_config(tmp_path)
        assert cfg.acc_window_bits == 48
        assert cfg.rule_severity("PS101", Severity.ERROR) is Severity.ERROR

    def test_severity_override_off_silences_rule(self):
        cfg = LintConfig(severity={"RH401": Severity.OFF})
        findings = lint_file(FIXTURES / "rh401_bare_except.py", cfg)
        assert findings == []

    def test_severity_override_warning_keeps_exit_zero(self):
        cfg = LintConfig(severity={"RH403": Severity.WARNING})
        report = lint_paths([FIXTURES / "rh403_silent_swallow.py"], cfg)
        assert [f.severity for f in report.findings] == [Severity.WARNING]
        assert report.exit_code == 0

    def test_path_allowlist_suppresses_rule(self):
        cfg = LintConfig(allow={"RH402": ("rh402_raw_pickle.py",)})
        assert lint_file(FIXTURES / "rh402_raw_pickle.py", cfg) == []

    def test_pickle_wrapper_scope(self, tmp_path):
        wrapper = tmp_path / "repro" / "cache.py"
        wrapper.parent.mkdir(parents=True)
        wrapper.write_text(
            "import pickle\n\ndef load(b):\n    return pickle.loads(b)\n",
            encoding="utf-8",
        )
        assert lint_file(wrapper, LintConfig()) == []


class TestInlineAllow:
    def test_same_line_allow(self, tmp_path):
        out = tmp_path / "f.py"
        out.write_text(
            "import pickle\n"
            "def f(b):\n"
            "    return pickle.loads(b)  # repro: allow[RH402] trusted bytes\n",
            encoding="utf-8",
        )
        assert lint_file(out, LintConfig()) == []

    def test_multiline_comment_block_allow(self, tmp_path):
        out = tmp_path / "f.py"
        out.write_text(
            "import pickle\n"
            "def f(b):\n"
            "    # This blob is produced and consumed inside one process;\n"
            "    # no torn-write window exists.\n"
            "    # repro: allow[RH402]\n"
            "    return pickle.loads(b)\n",
            encoding="utf-8",
        )
        assert lint_file(out, LintConfig()) == []

    def test_allow_star_suppresses_everything(self, tmp_path):
        out = tmp_path / "f.py"
        out.write_text(
            "import pickle\n"
            "def f(b):\n"
            "    return pickle.loads(b)  # repro: allow[*]\n",
            encoding="utf-8",
        )
        assert lint_file(out, LintConfig()) == []

    def test_allow_for_other_rule_does_not_suppress(self, tmp_path):
        out = tmp_path / "f.py"
        out.write_text(
            "import pickle\n"
            "def f(b):\n"
            "    return pickle.loads(b)  # repro: allow[PS101]\n",
            encoding="utf-8",
        )
        assert [f.rule_id for f in lint_file(out, LintConfig())] == ["RH402"]

    _DECORATED_ASYNC = (
        "import time\n"
        "\n"
        "def deco(f):\n"
        "    return f\n"
        "\n"
        "{allow}"
        "@deco\n"
        "async def handler():\n"
        "    time.sleep(1)\n"
    )

    def test_allow_above_decorator_attaches_to_def(self, tmp_path):
        # Regression: the contiguous comment-block scan used to stop at
        # the decorator, so an allow placed above `@deco` never reached
        # the `async def` the finding is anchored at.
        out = tmp_path / "f.py"
        out.write_text(
            self._DECORATED_ASYNC.format(
                allow="# repro: allow[AS601] demo handler, blocking on purpose\n"
            ),
            encoding="utf-8",
        )
        assert lint_file(out, LintConfig()) == []

    def test_decorated_def_without_allow_still_fires(self, tmp_path):
        out = tmp_path / "f.py"
        out.write_text(self._DECORATED_ASYNC.format(allow=""), encoding="utf-8")
        assert [f.rule_id for f in lint_file(out, LintConfig())] == ["AS601"]


class TestReport:
    def test_exit_codes(self):
        clean = lint_paths([FIXTURES / "repro/types/clean_ok.py"], LintConfig())
        dirty = lint_paths([FIXTURES / "rh402_raw_pickle.py"], LintConfig())
        assert clean.exit_code == 0 and dirty.exit_code == 1

    def test_parse_error_fails_the_run(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = lint_paths([bad], LintConfig())
        assert report.parse_errors and report.exit_code == 1

    def test_render_summary_line(self):
        report = lint_paths([FIXTURES / "rh402_raw_pickle.py"], LintConfig())
        assert report.render().endswith("1 file(s) checked: 2 error(s), 0 warning(s)")

    def test_findings_sorted_and_serializable(self):
        report = lint_paths([FIXTURES], LintConfig())
        keys = [(f.path, f.line, f.col) for f in report.findings]
        assert keys == sorted(keys)
        d = report.findings[0].to_dict()
        assert {"path", "line", "col", "rule_id", "message", "severity"} <= set(d)

    def test_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text(
            "import pickle\npickle.loads(b'')\n", encoding="utf-8"
        )
        report = lint_paths([tmp_path], LintConfig())
        assert report.files_checked == 0


class TestAutofix:
    def test_rh401_fix_roundtrip(self, tmp_path):
        src = (FIXTURES / "rh401_bare_except.py").read_text(encoding="utf-8")
        out = tmp_path / "rh401.py"
        out.write_text(src, encoding="utf-8")

        report = lint_paths([out], LintConfig())
        assert [f.rule_id for f in report.findings] == ["RH401"]
        assert apply_fixes(report) == 1

        fixed = out.read_text(encoding="utf-8")
        assert "except Exception:  # line 8: RH401" in fixed
        assert lint_paths([out], LintConfig()).findings == []

    def test_fix_skips_drifted_file(self, tmp_path):
        out = tmp_path / "rh401.py"
        out.write_text("try:\n    pass\nexcept:\n    pass\n", encoding="utf-8")
        report = lint_paths([out], LintConfig())
        # Simulate an edit between report and fix: content no longer matches.
        out.write_text("try:\n    pass\nexcept OSError:\n    pass\n", encoding="utf-8")
        assert apply_fixes(report) == 0

    def test_unfixable_rules_untouched(self, tmp_path):
        src = (FIXTURES / "rh402_raw_pickle.py").read_text(encoding="utf-8")
        out = tmp_path / "rh402.py"
        out.write_text(src, encoding="utf-8")
        report = lint_paths([out], LintConfig())
        assert apply_fixes(report) == 0
        assert out.read_text(encoding="utf-8") == src


def test_finding_is_frozen():
    f = Finding(
        path="x.py", line=1, col=0, rule_id="PS101",
        message="m", severity=Severity.ERROR,
    )
    with pytest.raises(AttributeError):
        f.line = 2  # type: ignore[misc]
