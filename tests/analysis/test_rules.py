"""Per-rule fixture coverage: exact rule-id/line findings, zero noise.

Each fixture under ``fixtures/`` contains one known-bad snippet per rule
alongside deliberately-clean lookalikes; the tests pin the *exact*
(rule_id, line) set so both missed findings and false positives fail.
"""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_file

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

#: fixture path (relative to FIXTURES) -> exact expected (rule_id, line) set.
EXPECTED = {
    "repro/types/ps101_float_arith.py": [("PS101", 5), ("PS101", 6)],
    "repro/types/ps102_math_call.py": [("PS102", 7)],
    "ps103_float_eq.py": [("PS103", 5), ("PS103", 7)],
    "repro/arith/ps104_shift_window.py": [("PS104", 8), ("PS104", 20)],
    "repro/mxu/ps105_f32_cast.py": [("PS105", 7), ("PS105", 8), ("PS105", 9)],
    "dt201_unseeded_rng.py": [("DT201", 7), ("DT201", 8)],
    "dt202_global_numpy.py": [("DT202", 7), ("DT202", 8)],
    "dt203_stdlib_random.py": [("DT203", 8), ("DT203", 9)],
    "fs301_lambda_task.py": [("FS301", 11), ("FS301", 16)],
    "fs302_global_mutation.py": [("FS302", 10), ("FS302", 11), ("FS302", 12)],
    "fs303_shm_leak.py": [("FS303", 7)],
    "fs303_shm_registry.py": [("FS303", 15)],
    "fs304_transitive_mutation.py": [("FS304", 19)],
    "rh401_bare_except.py": [("RH401", 8)],
    "rh402_raw_pickle.py": [("RH402", 8), ("RH402", 12)],
    "rh403_silent_swallow.py": [("RH403", 7)],
    "repro/gemm/xf501_float_cast.py": [("XF501", 16)],
    "repro/gemm/xf502_narrow_cast.py": [("XF502", 14)],
    "repro/gemm/xf503_unordered_sum.py": [("XF503", 18)],
    "repro/gemm/xf504_nonrne_round.py": [("XF504", 14)],
    "repro/gemm/xf505_lossy_arith.py": [("XF505", 12)],
    "as601_blocking_coroutine.py": [("AS601", 10)],
    "as602_orphan_task.py": [("AS602", 11)],
    "repro/serve/as603_shared_state_race.py": [("AS603", 12)],
    "repro/serve/as604_missing_timeout.py": [("AS604", 11)],
    "as605_unawaited_coroutine.py": [("AS605", 11)],
    "repro/types/clean_ok.py": [],
}


def _lint(rel: str):
    return lint_file(FIXTURES / rel, LintConfig())


@pytest.mark.parametrize("rel", sorted(EXPECTED))
def test_fixture_findings_exact(rel):
    found = [(f.rule_id, f.line) for f in _lint(rel)]
    assert found == sorted(EXPECTED[rel], key=lambda t: t[1])


@pytest.mark.parametrize("rel", sorted(EXPECTED))
def test_fixture_is_valid_python(rel):
    compile((FIXTURES / rel).read_text(encoding="utf-8"), rel, "exec")


def test_findings_carry_location_and_render(tmp_path):
    findings = _lint("repro/types/ps101_float_arith.py")
    first = findings[0]
    assert first.line == 5 and first.col >= 0
    rendered = first.render()
    assert "ps101_float_arith.py:5:" in rendered
    assert "PS101" in rendered and "error" in rendered


def test_inline_allow_suppresses_ps101():
    # Line 13 of the PS101 fixture repeats the violation under a
    # `# repro: allow[PS101]` comment — it must not be reported.
    lines = [f.line for f in _lint("repro/types/ps101_float_arith.py")]
    assert 13 not in lines


def test_scoped_rules_silent_outside_bit_exact_modules(tmp_path):
    # The identical PS101/PS102 source outside a bit-exact path fragment
    # must produce no findings: precision rules are scope-gated.
    for rel in ("repro/types/ps101_float_arith.py", "repro/types/ps102_math_call.py"):
        src = (FIXTURES / rel).read_text(encoding="utf-8")
        out = tmp_path / Path(rel).name
        out.write_text(src, encoding="utf-8")
        assert lint_file(out, LintConfig()) == []


def test_ps103_exact_literals_never_flagged(tmp_path):
    out = tmp_path / "eq.py"
    out.write_text(
        "def f(x):\n"
        "    return x == 0.25 or x == 1024.0 or x != 65504.0 or x == 1e3\n",
        encoding="utf-8",
    )
    assert lint_file(out, LintConfig()) == []


def test_ps103_escape_hatch_config(tmp_path):
    out = tmp_path / "eq.py"
    out.write_text("def f(x):\n    return x == 0.1\n", encoding="utf-8")
    assert [f.rule_id for f in lint_file(out, LintConfig())] == ["PS103"]
    relaxed = LintConfig(exact_float_literals=frozenset({0.1}))
    assert lint_file(out, relaxed) == []


def test_ps104_window_tracks_config(tmp_path):
    out = tmp_path / "repro" / "arith" / "sched.py"
    out.parent.mkdir(parents=True)
    out.write_text("schedule = [(0, 0, 24)]\n", encoding="utf-8")
    # 24 + 2*12 == 48 fits the default window ...
    assert lint_file(out, LintConfig()) == []
    # ... but escapes a narrowed 40-bit window.
    narrow = LintConfig(acc_window_bits=40)
    assert [f.rule_id for f in lint_file(out, narrow)] == ["PS104"]


def test_clean_src_tree_has_zero_findings():
    """Acceptance: the shipped source tree lints clean (no FP noise)."""
    from repro.analysis import lint_paths, load_config

    report = lint_paths([REPO / "src"], load_config(REPO / "src"))
    assert report.files_checked > 30
    assert report.parse_errors == []
    assert report.findings == [], "\n" + report.render()
