"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gemm_args(self):
        args = build_parser().parse_args(
            ["gemm", "--m", "64", "--n", "64", "--k", "64", "--complex"]
        )
        assert args.is_complex and args.m == 64


class TestCommands:
    def test_peaks(self, capsys):
        assert main(["peaks"]) == 0
        out = capsys.readouterr().out
        assert "fp16_tc" in out and "311.9" in out

    def test_peaks_h100(self, capsys):
        assert main(["peaks", "--gpu", "h100"]) == 0
        assert "h100" in capsys.readouterr().out

    def test_synthesis(self, capsys):
        assert main(["synthesis"]) == 0
        out = capsys.readouterr().out
        assert "m3xu_pipelined" in out

    def test_gemm_all_kernels(self, capsys):
        assert main(["gemm", "--m", "512", "--n", "512", "--k", "512"]) == 0
        out = capsys.readouterr().out
        assert "M3XU_sgemm_pipelined" in out

    def test_gemm_single_kernel(self, capsys):
        rc = main(
            ["gemm", "--m", "512", "--n", "512", "--k", "512",
             "--kernel", "M3XU_sgemm"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "M3XU_sgemm" in out and "cutlass" not in out

    def test_gemm_unknown_kernel(self, capsys):
        rc = main(["gemm", "--m", "8", "--n", "8", "--k", "8", "--kernel", "nope"])
        assert rc == 2

    def test_gemm_complex(self, capsys):
        assert main(["gemm", "--m", "256", "--n", "256", "--k", "256", "--complex"]) == 0
        assert "cgemm" in capsys.readouterr().out

    def test_design_space(self, capsys):
        assert main(["design-space"]) == 0
        assert "fp64@27b" in capsys.readouterr().out

    def test_report_unknown(self, capsys):
        assert main(["report", "fig99"]) == 2

    def test_report_single(self, capsys):
        assert main(["report", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out
