"""Accuracy study: the Section V-B claims as assertions."""

import pytest

from repro.accuracy import cgemm_accuracy_study, sgemm_accuracy_study


@pytest.fixture(scope="module")
def sgemm():
    return {r.name: r for r in sgemm_accuracy_study()}


@pytest.fixture(scope="module")
def cgemm():
    return {r.name: r for r in cgemm_accuracy_study()}


class TestSgemmClaims:
    def test_all_impls_present(self, sgemm):
        assert set(sgemm) == {
            "fp32_simt",
            "m3xu_fp32",
            "3xtf32",
            "3xbf16",
            "4xfp16",
            "fp16_tc",
        }

    def test_m3xu_no_additional_error(self, sgemm):
        # "computation results using M3XU instructions introduce no
        # additional error compared to conventional FP32 ALUs".
        assert sgemm["m3xu_fp32"].matching_bits >= sgemm["fp32_simt"].matching_bits

    def test_m3xu_fp32_level_accuracy(self, sgemm):
        assert sgemm["m3xu_fp32"].matching_bits > 19.0

    def test_bf16_scheme_loses_bits(self, sgemm):
        # "between one and several bits of precision loss".
        loss = sgemm["m3xu_fp32"].matching_bits - sgemm["3xbf16"].matching_bits
        assert 1.0 <= loss <= 8.0

    def test_plain_fp16_unusable(self, sgemm):
        assert sgemm["fp16_tc"].matching_bits < 15.0

    def test_max_rel_error_ordering(self, sgemm):
        assert sgemm["m3xu_fp32"].max_rel_error <= sgemm["3xbf16"].max_rel_error
        assert sgemm["3xbf16"].max_rel_error <= sgemm["fp16_tc"].max_rel_error


class TestCgemmClaims:
    def test_m3xu_no_additional_error_complex(self, cgemm):
        assert cgemm["m3xu_fp32c"].matching_bits >= cgemm["fp32c_simt"].matching_bits

    def test_all_complex_impls_reasonable(self, cgemm):
        for r in cgemm.values():
            assert r.matching_bits > 15.0, r.name

    def test_mean_abs_error_finite(self, cgemm):
        for r in cgemm.values():
            assert r.mean_abs_error >= 0.0


class TestStudyConfig:
    def test_custom_impl_subset(self):
        from repro.accuracy import SGEMM_IMPLS

        res = sgemm_accuracy_study(
            m=8, n=8, k=16, impls={"fp32_simt": SGEMM_IMPLS["fp32_simt"]}
        )
        assert len(res) == 1 and res[0].name == "fp32_simt"

    def test_deterministic(self):
        a = sgemm_accuracy_study(m=8, n=8, k=8, seed=3)
        b = sgemm_accuracy_study(m=8, n=8, k=8, seed=3)
        assert [r.max_rel_error for r in a] == [r.max_rel_error for r in b]
