"""Error-growth studies and theoretical bound checkers."""

import numpy as np
import pytest

from repro.accuracy import (
    BOUND_PARAMS,
    GROWTH_IMPLS,
    dynamic_range_sweep,
    error_growth_vs_k,
    gamma,
    scheme_error_bound,
)
from repro.types import FP32, quantize


class TestGrowth:
    @pytest.fixture(scope="class")
    def points(self):
        return error_growth_vs_k(ks=[16, 64, 256])

    def _series(self, points, impl):
        return [p.mean_rel_error for p in points if p.impl == impl]

    def test_simt_error_grows_with_k(self, points):
        s = self._series(points, "fp32_simt")
        assert s[0] < s[1] < s[2]

    def test_m3xu_below_simt_at_every_k(self, points):
        simt = self._series(points, "fp32_simt")
        m3 = self._series(points, "m3xu_fp32")
        for a, b in zip(m3, simt):
            assert a <= b * 1.05

    def test_bf16_scheme_worst_at_short_k(self, points):
        # At short K the BF16 representation error dominates everything.
        bf = self._series(points, "3xbf16")
        for impl in ("fp32_simt", "m3xu_fp32", "3xtf32"):
            other = self._series(points, impl)
            assert bf[0] > other[0], impl

    def test_3xtf32_truncation_bias_grows(self, points):
        # The baseline TC's round-toward-zero accumulation biases every
        # chunk the same way, so the 3xTF32 error grows *faster* than the
        # SIMT chain's (whose RNE errors partially cancel) — the RZ
        # effect Ootomo & Yokota analyse.
        tf = self._series(points, "3xtf32")
        simt = self._series(points, "fp32_simt")
        assert tf[2] / tf[0] > simt[2] / simt[0]

    def test_growth_roughly_linear_for_chain(self, points):
        # 16 -> 256 is 16x K; the chain error should grow by roughly
        # an order of magnitude (sqrt(K) to K statistically).
        s = self._series(points, "fp32_simt")
        assert 2.0 < s[2] / s[0] < 64.0


class TestDynamicRange:
    def test_bf16_degrades_fastest(self):
        sweep = dynamic_range_sweep(range_pows=[0, 4])
        bf_growth = sweep["3xbf16"][1] / sweep["3xbf16"][0]
        m3_growth = sweep["m3xu_fp32"][1] / max(sweep["m3xu_fp32"][0], 1e-30)
        assert sweep["3xbf16"][1] > sweep["m3xu_fp32"][1]
        assert bf_growth > 0  # sanity

    def test_all_impls_present(self):
        sweep = dynamic_range_sweep(range_pows=[0])
        assert set(sweep) == set(GROWTH_IMPLS)


class TestBounds:
    def test_gamma_small_n(self):
        assert gamma(1) == pytest.approx(2.0**-24, rel=1e-6)

    def test_gamma_monotone(self):
        assert gamma(10) < gamma(100) < gamma(1000)

    def test_gamma_divergence_guard(self):
        with pytest.raises(ValueError):
            gamma(2.0**25)

    @pytest.mark.parametrize("scheme", sorted(BOUND_PARAMS))
    def test_empirical_error_within_bound(self, rng, scheme):
        m = n = 16
        k = 128
        a = quantize(rng.uniform(0.1, 1.0, size=(m, k)), FP32)
        b = quantize(rng.uniform(0.1, 1.0, size=(k, n)), FP32)
        got = GROWTH_IMPLS[{
            "fp32_simt": "fp32_simt",
            "m3xu_fp32": "m3xu_fp32",
            "3xtf32": "3xtf32",
            "3xbf16": "3xbf16",
        }[scheme]](a, b, np.zeros((m, n)))
        bound = scheme_error_bound(scheme, np.abs(a), np.abs(b))
        err = np.abs(got - a @ b)
        assert np.all(err <= bound + 1e-12), scheme

    def test_bound_orders_match_accuracy_orders(self, rng):
        a = np.abs(rng.normal(size=(4, 64))) + 0.1
        b = np.abs(rng.normal(size=(64, 4))) + 0.1
        b_simt = scheme_error_bound("fp32_simt", a, b)
        b_m3 = scheme_error_bound("m3xu_fp32", a, b)
        b_bf = scheme_error_bound("3xbf16", a, b)
        assert np.all(b_m3 < b_simt)
        assert np.all(b_simt < b_bf)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            scheme_error_bound("int8", np.ones((2, 2)), np.ones((2, 2)))
