"""The v2 parallel engine: pool lifecycle, shm transfer, failure semantics."""

from __future__ import annotations

import os
import pathlib
import time

import numpy as np
import pytest

from repro import parallel
from repro.parallel import (
    SHM_MIN_BYTES,
    ParallelTaskError,
    TaskFailure,
    parallel_map,
    pool_info,
    resolve_shm_threshold,
    resolve_workers,
    shutdown,
    split_ranges,
)


# ---- module-level (picklable) worker functions -----------------------
def _double(x):
    return 2 * x


def _boom(x):
    if x == 2:
        raise KeyError("worker failure on item 2")
    return x


def _flaky(item):
    """Fails the first *fail_times* attempts for its index, then succeeds.
    Attempt counts persist in files so they survive worker boundaries."""
    root, x, fail_times = item
    marker = pathlib.Path(root) / f"attempts-{x}"
    seen = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(seen + 1))
    if seen < fail_times:
        raise ValueError(f"transient failure on item {x} (attempt {seen + 1})")
    return 10 * x


def _hang(item):
    x, hang_index = item
    if x == hang_index:
        time.sleep(60.0)
    return x


def _die_once(item):
    """Kills its worker process outright on the first attempt."""
    root, x = item
    marker = pathlib.Path(root) / f"died-{x}"
    if x == 1 and not marker.exists():
        marker.write_text("1")
        os._exit(17)
    return x


def _sum_arrays(item):
    a, tag, b = item
    return float(a.sum() + b.sum()), tag


def _identity_array(a):
    return a


def _nested_fanout(x):
    """A task that is itself a parallel caller (run_all -> accuracy shape)."""
    import os

    before = parallel.pool_info()["spawns"]
    inner = parallel_map(_double, [x, x + 1, x + 2], workers=2)
    spawned = parallel.pool_info()["spawns"] - before
    return os.getpid(), spawned, inner


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    shutdown()
    yield
    shutdown()


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_bad_env_warns_and_serialises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        with pytest.warns(RuntimeWarning, match="not-a-number"):
            assert resolve_workers() == 1

    def test_zero_selects_cpu_count(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)


class TestResolveShmThreshold:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES", raising=False)
        assert resolve_shm_threshold() == SHM_MIN_BYTES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "4096")
        assert resolve_shm_threshold() == 4096

    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        assert resolve_shm_threshold() == 0

    def test_bad_env_warns_and_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "huge")
        with pytest.warns(RuntimeWarning, match="huge"):
            assert resolve_shm_threshold() == 0

    def test_explicit_negative_disables(self):
        assert resolve_shm_threshold(-1) == 0


class TestOrderingAndDeterminism:
    def test_matches_serial(self):
        items = list(range(23))
        assert parallel_map(_double, items, workers=3) == [_double(i) for i in items]

    def test_chunk1_more_workers_than_items(self):
        items = [5, 1, 4]
        got = parallel_map(_double, items, workers=8, chunk_size=1)
        assert got == [10, 2, 8]

    def test_single_item_stays_serial(self):
        before = pool_info()["spawns"]
        assert parallel_map(_double, [21], workers=4) == [42]
        assert pool_info()["spawns"] == before  # no executor for one item

    def test_empty(self):
        assert parallel_map(_double, [], workers=4) == []


class TestFailureSemantics:
    def test_original_exception_type_propagates(self):
        with pytest.raises(KeyError, match="worker failure on item 2"):
            parallel_map(_boom, [0, 1, 2, 3], workers=2, chunk_size=1)

    def test_pool_survives_worker_exception(self):
        with pytest.raises(KeyError):
            parallel_map(_boom, [0, 2], workers=2, chunk_size=1)
        # The executor is not poisoned by a raising task: same pool,
        # next call succeeds.
        assert parallel_map(_double, [1, 2, 3], workers=2) == [2, 4, 6]


class TestPersistentPool:
    def test_pool_reused_across_calls(self):
        parallel_map(_double, [1, 2, 3, 4], workers=2)
        spawns = pool_info()["spawns"]
        for _ in range(3):
            parallel_map(_double, [1, 2, 3, 4], workers=2)
        assert pool_info()["spawns"] == spawns
        assert pool_info()["alive"]

    def test_wider_request_grows_pool(self):
        parallel_map(_double, [1, 2], workers=2)
        assert pool_info()["workers"] == 2
        parallel_map(_double, [1, 2, 3, 4], workers=4)
        assert pool_info()["workers"] == 4
        # narrower request reuses the wide pool
        spawns = pool_info()["spawns"]
        parallel_map(_double, [1, 2], workers=2)
        assert pool_info()["spawns"] == spawns and pool_info()["workers"] == 4

    def test_shutdown_releases_and_recreates(self):
        parallel_map(_double, [1, 2], workers=2)
        assert pool_info()["alive"]
        shutdown()
        assert not pool_info()["alive"]
        assert parallel_map(_double, [1, 2], workers=2) == [2, 4]
        assert pool_info()["alive"]

    def test_fresh_pool_does_not_touch_persistent(self):
        shutdown()
        assert parallel_map(_double, [1, 2], workers=2, fresh_pool=True) == [2, 4]
        assert not pool_info()["alive"]

    def test_nested_parallel_map_runs_serial_in_worker(self):
        # A task that fans out again must NOT fork a pool inside the pool
        # worker (that deadlocks on executor queues inherited mid-use).
        # The inner call collapses to the serial path: same results, and
        # zero executors ever created in the worker process.
        results = parallel_map(_nested_fanout, [10, 20], workers=2, chunk_size=1)
        assert [r[2] for r in results] == [[20, 22, 24], [40, 42, 44]]
        import os

        for pid, spawned_in_worker, _ in results:
            assert pid != os.getpid()
            assert spawned_in_worker == 0


class TestSharedMemoryTransfer:
    def test_shm_results_match_pickle_results(self, rng):
        a = rng.normal(size=(64, 64))
        b = rng.normal(size=(64, 64))
        items = [(a + i, f"tag{i}", b - i) for i in range(4)]
        serial = [_sum_arrays(it) for it in items]
        via_shm = parallel_map(
            _sum_arrays, items, workers=2, chunk_size=1, shm_threshold=64
        )
        via_pickle = parallel_map(
            _sum_arrays, items, workers=2, chunk_size=1, shm_threshold=0
        )
        assert via_shm == serial == via_pickle

    def test_shm_bit_identical_payload(self, rng):
        # The worker echoes the array back: every byte must survive the
        # shm round trip (including a result that aliases the segment,
        # which the engine must copy out before the segment unmaps).
        a = rng.normal(size=(32, 33))
        (echo,) = parallel_map(
            _identity_array, [a, a * 0], workers=2, chunk_size=1, shm_threshold=64
        )[:1]
        assert echo.tobytes() == a.tobytes()

    @pytest.mark.skipif(not __import__("os").path.isdir("/dev/shm"),
                        reason="POSIX shm filesystem not visible")
    def test_segments_released(self, rng):
        import os

        a = rng.normal(size=(64, 64))
        before = set(os.listdir("/dev/shm"))
        parallel_map(
            _sum_arrays,
            [(a, "x", a), (a, "y", a)],
            workers=2,
            chunk_size=1,
            shm_threshold=64,
        )
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked

    def test_small_payloads_skip_shm(self, rng):
        a = rng.normal(size=(4, 4))  # far below the default threshold
        got = parallel_map(_identity_array, [a, a + 1], workers=2, chunk_size=1)
        assert got[0].tobytes() == a.tobytes()


class TestResilientExecution:
    """Retry / timeout / structured-failure semantics (v3)."""

    def test_retries_recover_transient_failures(self, tmp_path):
        items = [(str(tmp_path), x, 2 if x == 2 else 0) for x in range(4)]
        got = parallel_map(_flaky, items, workers=2, retries=3, backoff=0.0)
        assert got == [0, 10, 20, 30]
        # item 2 was attempted exactly 3 times (2 failures + 1 success)
        assert (tmp_path / "attempts-2").read_text() == "3"

    def test_retries_recover_serially_too(self, tmp_path):
        items = [(str(tmp_path), x, 1 if x == 1 else 0) for x in range(3)]
        before = pool_info()["spawns"]
        got = parallel_map(_flaky, items, workers=1, retries=2, backoff=0.0)
        assert got == [0, 10, 20]
        assert pool_info()["spawns"] == before  # stayed in-process

    def test_exhausted_retries_raise_structured_error(self, tmp_path):
        items = [(str(tmp_path), x, 99) for x in range(3)]
        with pytest.raises(ParallelTaskError) as err:
            parallel_map(_flaky, items, workers=2, retries=1, backoff=0.0)
        failures = err.value.failures
        assert sorted(f.index for f in failures) == [0, 1, 2]
        assert all(f.attempts == 2 for f in failures)
        assert all(f.cause == "exception" for f in failures)
        assert all(f.error_type == "ValueError" for f in failures)

    def test_return_failures_in_place_of_results(self, tmp_path):
        items = [(str(tmp_path), x, 99 if x == 1 else 0) for x in range(3)]
        got = parallel_map(
            _flaky, items, workers=2, retries=0, return_failures=True
        )
        assert got[0] == 0 and got[2] == 20
        failure = got[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1 and failure.attempts == 1
        assert "transient failure on item 1" in failure.message

    def test_timeout_abandons_hung_task(self):
        start = time.monotonic()
        got = parallel_map(
            _hang,
            [(x, 1) for x in range(3)],
            workers=2,
            timeout=1.0,
            return_failures=True,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # nowhere near the 60 s sleep
        assert got[0] == 0 and got[2] == 2
        assert isinstance(got[1], TaskFailure) and got[1].cause == "timeout"
        # the pool was respawned and is immediately usable
        assert parallel_map(_double, [1, 2, 3], workers=2) == [2, 4, 6]

    def test_worker_death_respawns_pool_and_retries(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(3)]
        got = parallel_map(_die_once, items, workers=2, retries=2, backoff=0.0)
        assert got == [0, 1, 2]
        assert (tmp_path / "died-1").exists()

    def test_worker_death_without_retries_is_structured(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(3)]
        got = parallel_map(_die_once, items, workers=2, return_failures=True)
        dead = [f for f in got if isinstance(f, TaskFailure)]
        assert dead and all(f.cause == "broken-pool" for f in dead)
        # pool recovered for the next caller
        assert parallel_map(_double, [4], workers=2) == [8]

    def test_env_knobs_resolve(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.0")
        items = [(str(tmp_path), x, 2 if x == 0 else 0) for x in range(2)]
        assert parallel_map(_flaky, items, workers=2) == [0, 10]

    def test_shm_segments_released_on_failure(self, rng, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("POSIX shm filesystem not visible")
        a = rng.normal(size=(64, 64))
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(KeyError, match="worker failure on item 2"):
            parallel_map(
                _boom, [0, 1, 2, 3], workers=2, chunk_size=1, shm_threshold=64
            )
        # failure path must not orphan segments either
        items = [(str(tmp_path), x, 99 if x == 1 else 0, a)[:3] for x in range(3)]
        with pytest.raises(ParallelTaskError):
            parallel_map(
                _flaky, items, workers=2, retries=1, backoff=0.0, shm_threshold=64
            )
        assert set(os.listdir("/dev/shm")) - before == set()

    def test_on_result_streams_each_completion(self):
        seen: list[tuple[int, int]] = []
        got = parallel_map(
            _double, [3, 4, 5], workers=2, chunk_size=1,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert got == [6, 8, 10]
        assert sorted(seen) == [(0, 6), (1, 8), (2, 10)]

    def test_inert_policy_keeps_fast_path(self, monkeypatch):
        for env in ("REPRO_TASK_TIMEOUT", "REPRO_RETRIES", "REPRO_RETRY_BACKOFF"):
            monkeypatch.delenv(env, raising=False)
        # chunked Executor.map path: one round of map, not per-task submits
        got = parallel_map(_double, list(range(20)), workers=2)
        assert got == [2 * x for x in range(20)]

    def test_retry_schedule_deterministic_across_pool_respawn(self, tmp_path):
        """A seeded RetryPolicy replays the same backoff schedule before
        and after a BrokenProcessPool recovery — the jitter RNG lives in
        the parent and must not be perturbed by worker death/respawn."""
        from repro.resilience.failures import RetryPolicy

        policy = RetryPolicy(retries=4, backoff=0.25, seed=13)
        before = policy.schedule()
        # Kill a worker mid-map: the pool respawns and the task retries.
        items = [(str(tmp_path), x) for x in range(3)]
        assert parallel_map(_die_once, items, workers=2, retries=2,
                            backoff=0.0) == [0, 1, 2]
        assert (tmp_path / "died-1").exists()  # the death really happened
        after = policy.schedule()
        assert after == before
        # And a fresh policy with the same seed replays it too.
        assert RetryPolicy(retries=4, backoff=0.25, seed=13).schedule() == before

    def test_pool_health_counters_track_events(self, tmp_path):
        before = pool_info()
        items = [(str(tmp_path), x) for x in range(3)]
        parallel_map(_die_once, items, workers=2, retries=2, backoff=0.0)
        after = pool_info()
        assert after["broken_events"] >= before["broken_events"] + 1
        assert after["task_retries"] >= before["task_retries"] + 1
        assert after["failure_streak"] == 0  # the retry succeeded

        got = parallel_map(_hang, [(1, 1)], workers=1, timeout=0.5,
                           return_failures=True)
        assert isinstance(got[0], TaskFailure)
        assert pool_info()["timeout_events"] >= after["timeout_events"] + 1
        assert pool_info()["failure_streak"] >= 1


class TestSplitRanges:
    def test_partition(self):
        for n in (1, 5, 16, 17):
            for parts in (1, 2, 4, 32):
                rs = split_ranges(n, parts)
                assert rs[0][0] == 0 and rs[-1][1] == n
                assert all(lo < hi for lo, hi in rs)
                assert all(rs[i][1] == rs[i + 1][0] for i in range(len(rs) - 1))

    def test_empty(self):
        assert split_ranges(0, 4) == []
