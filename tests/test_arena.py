"""The worker-pinned operand arena: publish/pin/fetch lifecycle, LRU
bounds, unlink hygiene, and bit-identity of arena-routed sharded GEMMs.

The arena's contract mirrors the split cache's: content-addressed
segments only ever change *where* bytes live, never what any consumer
computes — and no segment outlives ``shutdown()``.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import parallel
from repro.mxu.parallel_bitlevel import sharded_bitlevel_gemm
from repro.mxu.split_cache import DEFAULT_SPLIT_CACHE, SPLIT_CACHE_ENV
from repro.parallel import (
    ARENA_ENV,
    ARENA_MAX_BYTES,
    arena_clear,
    arena_fetch,
    arena_info,
    arena_pin,
    arena_publish,
    arena_unpin,
    arena_worker_info,
    pool_info,
    resolve_arena_max_bytes,
)
from repro.types.formats import FP32
from repro.types.quantize import quantize


@pytest.fixture(autouse=True)
def _clean_state():
    for env in (ARENA_ENV, SPLIT_CACHE_ENV, "REPRO_WORKERS"):
        os.environ.pop(env, None)
    DEFAULT_SPLIT_CACHE.clear()
    parallel.shutdown()
    yield
    for env in (ARENA_ENV, SPLIT_CACHE_ENV, "REPRO_WORKERS"):
        os.environ.pop(env, None)
    DEFAULT_SPLIT_CACHE.clear()
    parallel.shutdown()
    assert arena_info()["entries"] == 0


def _planes(seed: int, n: int = 32) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "hi": rng.standard_normal((n, n)).astype(np.float32),
        "lo": rng.standard_normal((n, n)).astype(np.float32),
        "exp": rng.integers(-30, 30, size=(n, n)).astype(np.int16),
    }


class TestResolveArenaMaxBytes:
    def test_default(self):
        assert resolve_arena_max_bytes() == ARENA_MAX_BYTES

    def test_env_wins(self):
        os.environ[ARENA_ENV] = "4096"
        assert resolve_arena_max_bytes() == 4096

    def test_explicit_wins_over_env(self):
        os.environ[ARENA_ENV] = "4096"
        assert resolve_arena_max_bytes(128) == 128

    def test_negative_disables(self):
        os.environ[ARENA_ENV] = "-1"
        assert resolve_arena_max_bytes() == 0
        assert resolve_arena_max_bytes(-5) == 0

    def test_malformed_env_warns_and_falls_back(self):
        os.environ[ARENA_ENV] = "lots"
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert resolve_arena_max_bytes() == ARENA_MAX_BYTES


class TestPublishFetch:
    def test_roundtrip_bits_and_readonly(self):
        planes = _planes(1)
        handle = arena_publish("k1", planes)
        assert handle is not None
        views = arena_fetch(handle)
        assert set(views) == set(planes)
        for name in planes:
            assert views[name].tobytes() == planes[name].tobytes()
            assert views[name].dtype == planes[name].dtype
            assert not views[name].flags.writeable

    def test_republish_reuses_segment(self):
        before = arena_info()
        h1 = arena_publish("k1", _planes(1))
        h2 = arena_publish("k1", _planes(1))
        assert h1 is h2
        after = arena_info()
        assert after["publishes"] == before["publishes"] + 1
        assert after["reuses"] == before["reuses"] + 1
        assert after["entries"] == 1

    def test_disabled_returns_none(self):
        os.environ[ARENA_ENV] = "0"
        assert arena_publish("k1", _planes(1)) is None

    def test_oversized_returns_none(self):
        os.environ[ARENA_ENV] = "1024"
        assert arena_publish("k1", _planes(1)) is None
        assert arena_info()["entries"] == 0

    def test_fetch_unpublished_raises(self):
        handle = arena_publish("k1", _planes(1))
        assert handle is not None
        arena_clear(force=True)
        with pytest.raises(KeyError):
            arena_fetch(handle)

    def test_eviction_under_byte_pressure(self):
        planes = _planes(1)
        nbytes = sum(-(-p.nbytes // 64) * 64 for p in planes.values())
        os.environ[ARENA_ENV] = str(int(nbytes * 1.5))
        before = arena_info()
        h1 = arena_publish("k1", planes)
        h2 = arena_publish("k2", _planes(2))
        assert h1 is not None and h2 is not None
        info = arena_info()
        assert info["entries"] == 1
        assert info["evictions"] == before["evictions"] + 1
        with pytest.raises(KeyError):
            arena_fetch(h1)
        assert arena_fetch(h2)["hi"].size


class TestPinRefcount:
    def test_pin_blocks_eviction_and_survives_respawn(self):
        planes = _planes(1)
        nbytes = sum(-(-p.nbytes // 64) * 64 for p in planes.values())
        os.environ[ARENA_ENV] = str(int(nbytes * 1.5))
        h1 = arena_publish("k1", planes)
        assert h1 is not None
        arena_pin(h1)
        try:
            assert arena_info()["pinned"] == 1
            # Byte pressure cannot evict a pinned entry...
            h2 = arena_publish("k2", _planes(2))
            assert h2 is None  # no room: the only evictable set is empty
            assert arena_fetch(h1)["hi"].size
            # ...and neither does a forced pool respawn (retried tasks
            # must be able to re-attach by name).
            parallel._terminate_pool()
            assert arena_fetch(h1)["hi"].size
        finally:
            arena_unpin(h1)
        assert arena_info()["pinned"] == 0
        # Unpinned, the respawn sweep reaps it.
        parallel._terminate_pool()
        assert arena_info()["entries"] == 0

    def test_unpin_tolerates_unknown_handle(self):
        handle = arena_publish("k1", _planes(1))
        assert handle is not None
        arena_clear(force=True)
        arena_unpin(handle)  # no raise

    def test_pool_info_carries_arena(self):
        info = pool_info()
        assert set(info["arena"]) >= {
            "entries", "bytes", "pinned", "limit", "publishes", "reuses",
            "evictions", "unlinks", "segments",
        }


class TestUnlinkHygiene:
    def test_shutdown_unlinks_every_segment(self):
        arena_publish("k1", _planes(1))
        handle = arena_publish("k2", _planes(2))
        assert handle is not None
        names = arena_info()["segments"]
        assert len(names) == 2
        parallel.shutdown()
        assert arena_info()["entries"] == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_terminate_pool_unlinks_unpinned(self):
        arena_publish("k1", _planes(1))
        names = arena_info()["segments"]
        parallel._terminate_pool()
        assert arena_info()["entries"] == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestWorkerAttachLRU:
    """Worker-side fetch semantics, simulated deterministically by
    flipping the in-worker flag in this process (the integration path —
    real forked workers — is covered below and in the benchmarks)."""

    @pytest.fixture()
    def _as_worker(self):
        handles = [arena_publish(f"k{i}", _planes(i)) for i in range(3)]
        assert all(h is not None for h in handles)
        baseline = arena_worker_info()
        parallel._in_worker = True
        try:
            yield handles, baseline
        finally:
            parallel._in_worker = False
            for seg, _views, _nbytes in parallel._worker_arena.values():
                seg.close()
            parallel._worker_arena.clear()
            parallel._worker_arena_bytes = 0
            # Forked workers inherit these module globals — reset them so
            # the simulation never bleeds into later integration tests.
            parallel._worker_attaches = baseline["attaches"]
            parallel._worker_hits = baseline["hits"]
            parallel._worker_evictions = baseline["evictions"]

    def test_attach_hit_and_evict_counters(self, _as_worker):
        handles, base = _as_worker
        seg_bytes = max(
            sum(-(-p.nbytes // 64) * 64 for p in _planes(0).values()), 1
        )
        os.environ[ARENA_ENV] = str(int(seg_bytes * 1.5))

        views = arena_fetch(handles[0])  # cold attach
        assert views["hi"].tobytes() == _planes(0)["hi"].tobytes()
        assert not views["hi"].flags.writeable
        info = arena_worker_info()
        assert info["in_worker"] is True
        assert info["attaches"] == base["attaches"] + 1
        assert info["entries"] == 1

        arena_fetch(handles[0])  # LRU hit, no new attach
        info = arena_worker_info()
        assert info["hits"] == base["hits"] + 1
        assert info["attaches"] == base["attaches"] + 1

        arena_fetch(handles[1])  # over budget: evicts segment 0
        info = arena_worker_info()
        assert info["attaches"] == base["attaches"] + 2
        assert info["evictions"] == base["evictions"] + 1
        assert info["entries"] == 1

        # The evicted segment is still published — re-attach works.
        arena_fetch(handles[0])
        assert arena_worker_info()["attaches"] == base["attaches"] + 3

    def test_never_evicts_the_just_fetched_segment(self, _as_worker):
        handles, _ = _as_worker
        os.environ[ARENA_ENV] = "1"  # below any one segment
        views = arena_fetch(handles[2])
        # Its own views stay alive even though the budget is busted.
        assert arena_worker_info()["entries"] == 1
        assert views["lo"].tobytes() == _planes(2)["lo"].tobytes()


def _nested_sharded(payload) -> tuple[bytes, bool, int]:
    """Task fn: run a sharded GEMM *inside* a pool worker."""
    a, b = payload
    out = sharded_bitlevel_gemm(a, b, engine="vector", workers=4, chunk=8)
    info = arena_worker_info()
    return out.tobytes(), info["in_worker"], info["attaches"]


class TestShardedIntegration:
    def _operands(self, n=48):
        rng = np.random.default_rng(40)
        return (
            quantize(rng.standard_normal((n, n)), FP32),
            quantize(rng.standard_normal((n, n)), FP32),
        )

    def test_bit_identity_cached_vs_fresh_across_worker_counts(self):
        a, b = self._operands()
        os.environ[SPLIT_CACHE_ENV] = "0"
        reference = sharded_bitlevel_gemm(a, b, engine="vector", workers=0)
        os.environ.pop(SPLIT_CACHE_ENV, None)
        for workers in (0, 1, 2, 4):
            DEFAULT_SPLIT_CACHE.clear()
            cold = sharded_bitlevel_gemm(
                a, b, engine="vector", workers=workers, chunk=16
            )
            warm = sharded_bitlevel_gemm(
                a, b, engine="vector", workers=workers, chunk=16
            )
            assert cold.tobytes() == reference.tobytes(), f"workers={workers} cold"
            assert warm.tobytes() == reference.tobytes(), f"workers={workers} warm"

    def test_parallel_dispatch_publishes_and_workers_attach(self):
        a, b = self._operands()
        before = arena_info()
        out1 = sharded_bitlevel_gemm(a, b, engine="vector", workers=2, chunk=16)
        out2 = sharded_bitlevel_gemm(a, b, engine="vector", workers=2, chunk=16)
        assert out1.tobytes() == out2.tobytes()
        info = arena_info()
        assert info["publishes"] == before["publishes"] + 1
        assert info["reuses"] >= before["reuses"] + 1
        probes = parallel.parallel_map(
            parallel._arena_probe, [None, None], workers=2, chunk_size=1,
            timeout=60.0,
        )
        assert all(p["in_worker"] for p in probes)
        assert any(p["attaches"] >= 1 for p in probes)

    def test_nested_in_worker_collapses_serial_without_arena(self):
        a, b = self._operands(n=32)
        serial = sharded_bitlevel_gemm(a, b, engine="vector", workers=0)
        publishes_before = arena_info()["publishes"]
        (got, in_wkr, attaches), = parallel.parallel_map(
            _nested_sharded, [(a, b)], workers=2, timeout=120.0
        )
        assert got == serial.tobytes()
        assert in_wkr is True
        # The nested call ran serially: nothing was published for it and
        # the worker never attached a segment on its behalf.
        assert attaches == 0
        assert arena_info()["publishes"] == publishes_before
