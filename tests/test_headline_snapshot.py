"""Headline-metric regression snapshot.

Pins the reproduction's headline numbers so accidental calibration drift
(a constant edited, a model refactor) fails loudly instead of silently
shifting the paper-vs-measured story. Tolerances are deliberately tight —
these values are deterministic model outputs, not measurements. If a
change is *intentional*, update the snapshot and EXPERIMENTS.md together.
"""

import pytest

from repro.eval import (
    fig4_gemm_speedups,
    fig6_fft,
    fig8_mrf,
    fig9_knn,
    table3_synthesis,
)

#: metric -> (expected, relative tolerance)
SNAPSHOT = {
    "fig4.sgemm_m3xu_max": (3.90, 0.02),
    "fig4.sgemm_m3xu_avg": (3.68, 0.03),
    "fig4.cgemm_m3xu_max": (3.90, 0.02),
    "fig4.sgemm_alternatives_max": (2.86, 0.05),
    "fig4.cgemm_tensorop_max": (2.02, 0.05),
    "fig6.m3xu_fft_max": (1.95, 0.03),
    "fig6.m3xu_fft_avg": (1.58, 0.05),
    "fig8.mrf_speedup_max": (1.23, 0.04),
    "fig9.knn_speedup_max": (1.80, 0.03),
    "table3.m3xu_no_complex.area": (1.37, 0.03),
    "table3.m3xu.area": (1.45, 0.03),
    "table3.fp32_mxu.area": (3.67, 0.03),
    "table3.fp32_mxu.power": (7.75, 0.03),
    "table3.m3xu.cycle": (1.19, 0.03),
}


@pytest.fixture(scope="module")
def measured():
    out = {}
    fig4 = fig4_gemm_speedups(sizes=[1024, 2048, 4096, 8192, 16384])
    for k, v in fig4.measured.items():
        out[f"fig4.{k}"] = v
    for k, v in fig6_fft().measured.items():
        out[f"fig6.{k}"] = v
    for k, v in fig8_mrf().measured.items():
        out[f"fig8.{k}"] = v
    for k, v in fig9_knn().measured.items():
        out[f"fig9.{k}"] = v
    for k, v in table3_synthesis().measured.items():
        out[f"table3.{k}"] = v
    return out


@pytest.mark.parametrize("metric", sorted(SNAPSHOT))
def test_headline_snapshot(measured, metric):
    expected, rel = SNAPSHOT[metric]
    assert measured[metric] == pytest.approx(expected, rel=rel), metric
