"""Cross-module integration tests.

These exercise end-to-end paths that span several subsystems at once —
the kind of wiring bugs unit tests miss.
"""

import numpy as np
import pytest

from repro.gpusim import a100_emulation, h100
from repro.kernels import CGEMM_KERNELS, SGEMM_KERNELS, GemmProblem


class TestCrossGpuRobustness:
    """The Figure 4 relationships must survive a change of GPU spec."""

    def test_h100_speedup_still_near_four(self):
        gpu = h100()
        p = GemmProblem(8192, 8192, 8192)
        sp = (SGEMM_KERNELS["cutlass_simt_sgemm"].time(p, gpu)
              / SGEMM_KERNELS["M3XU_sgemm_pipelined"].time(p, gpu))
        # H100's TC:SIMT ratio is ~8x so M3XU FP32 still caps near
        # min(4x-of-TC-path, ...) relative to its own SIMT cores: the TC
        # path gives 248 vs 62 TFLOPS -> ~4x ceiling again.
        assert 3.0 < sp < 4.2

    def test_h100_ordering_preserved(self):
        gpu = h100()
        p = GemmProblem(4096, 4096, 4096)
        times = {
            name: SGEMM_KERNELS[name].time(p, gpu)
            for name in ("cutlass_simt_sgemm", "cutlass_tensorop_sgemm",
                         "M3XU_sgemm", "M3XU_sgemm_pipelined")
        }
        assert (times["M3XU_sgemm_pipelined"] < times["M3XU_sgemm"]
                < times["cutlass_tensorop_sgemm"] < times["cutlass_simt_sgemm"])


class TestFunctionalPerfConsistency:
    """Kernels' functional implementations match their registry entries."""

    def test_every_kernel_functional_runs(self, rng):
        from repro.types import FP32, quantize, quantize_complex

        a = quantize(rng.normal(size=(16, 16)), FP32)
        b = quantize(rng.normal(size=(16, 16)), FP32)
        for name, k in SGEMM_KERNELS.items():
            if k.functional is None:
                continue
            d = k.functional(a, b, np.zeros((16, 16)))
            assert np.all(np.isfinite(d)), name
        ac = quantize_complex(rng.normal(size=(8, 8)) * (1 + 1j), FP32)
        bc = quantize_complex(rng.normal(size=(8, 8)) * (1 - 1j), FP32)
        for name, k in CGEMM_KERNELS.items():
            if k.functional is None:
                continue
            d = k.functional(ac, bc, np.zeros((8, 8), dtype=complex))
            assert np.all(np.isfinite(d)), name


class TestEndToEndPipelines:
    def test_fft_of_conv_equals_conv_theorem(self, rng):
        """FFT module + conv module agree through the convolution theorem."""
        from scipy.signal import convolve2d

        from repro.apps.conv import conv2d_fft

        x = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        got = conv2d_fft(x, w)
        ref = convolve2d(x[0, 0], w[0, 0], mode="same")
        np.testing.assert_allclose(got[0, 0], ref, atol=1e-10)

    def test_mrf_pipeline_on_m3xu_stack(self, rng):
        """EPG dictionary -> M3XU CGEMM matching -> correct tissue params."""
        from repro.apps.mrf import AtomGrid, FispSequence, generate_dictionary, match_fingerprints
        from repro.gemm import mxu_cgemm

        d = generate_dictionary(AtomGrid.standard(6, 6), FispSequence.standard(60))
        idx = rng.integers(0, d.n_atoms, size=5)
        t1, t2, _ = match_fingerprints(
            d, d.signals[idx] * 1.7, cgemm=lambda a, b: mxu_cgemm(a, b)
        )
        np.testing.assert_array_equal(t1, d.grid.t1_ms[idx])

    def test_quantum_fft_circuit(self):
        """QFT-like circuit through the M3XU-backed statevector matches
        the DFT of the initial amplitudes (up to bit reversal)."""
        from repro.apps.quantum import Statevector
        from repro.gemm import mxu_cgemm

        # 3-qubit uniform superposition has a delta-function QFT; use the
        # simulator to prepare it and verify probabilities.
        sv = Statevector(3, cgemm=lambda a, b: mxu_cgemm(a, b))
        for q in range(3):
            sv.h(q)
        probs = sv.probabilities()
        np.testing.assert_allclose(probs, 1.0 / 8.0, atol=1e-6)

    def test_report_runs_fast_subset(self):
        from repro.eval import run_all

        res = run_all(["table1", "section3c", "fig2"])
        assert len(res) == 3
        for r in res.values():
            assert r.rows and r.measured
