"""GEMM shape-family characterisation."""

import pytest

from repro.kernels import SHAPE_FAMILIES, family_speedups


class TestFamilies:
    def test_all_defined(self):
        assert set(SHAPE_FAMILIES) == {
            "square", "tall_skinny", "wide_k", "small_batch", "conv_like"
        }

    def test_descriptions(self):
        for fam in SHAPE_FAMILIES.values():
            assert fam.description and len(fam.problems) >= 3

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            family_speedups("cursed")


class TestCharacterisation:
    def test_square_near_four(self):
        sps = [sp for _, sp in family_speedups("square")]
        assert max(sps) > 3.7

    def test_small_batch_limited(self):
        # Latency/memory-bound FC shapes cannot approach the 4x peak ratio.
        sps = [sp for _, sp in family_speedups("small_batch")]
        assert all(sp < 2.5 for sp in sps)
        assert all(sp >= 0.95 for sp in sps)  # but never slower

    def test_never_slower_anywhere(self):
        for name in SHAPE_FAMILIES:
            for p, sp in family_speedups(name):
                assert sp >= 0.95, (name, p)

    def test_compute_dense_beats_memory_bound(self):
        square = max(sp for _, sp in family_speedups("square"))
        small = max(sp for _, sp in family_speedups("small_batch"))
        assert square > small
