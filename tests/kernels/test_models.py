"""Kernel performance models: the Figure 4/5 relationships."""

import pytest

from repro.gpusim import a100_emulation, estimate_time
from repro.kernels import (
    ALL_KERNELS,
    CGEMM_KERNELS,
    SGEMM_KERNELS,
    GemmProblem,
    get_kernel,
)


@pytest.fixture(scope="module")
def gpu():
    return a100_emulation()


def _speedup(kernels, name, base, problem, gpu):
    return kernels[base].time(problem, gpu) / kernels[name].time(problem, gpu)


class TestRegistry:
    def test_all_table_kernels_present(self):
        for name in (
            "cutlass_simt_sgemm",
            "cutlass_tensorop_sgemm",
            "EEHC_sgemm_fp32B",
            "M3XU_sgemm",
            "M3XU_sgemm_pipelined",
            "cutlass_simt_cgemm",
            "cutlass_tensorop_cgemm",
            "M3XU_cgemm",
            "M3XU_cgemm_pipelined",
        ):
            assert get_kernel(name).name == name

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel("cublas_hgemm")

    def test_descriptions_nonempty(self):
        for k in ALL_KERNELS.values():
            assert k.description


class TestGemmProblem:
    def test_macs_and_flops(self):
        p = GemmProblem(100, 200, 300)
        assert p.macs == 100 * 200 * 300
        assert p.flops == 2 * p.macs

    def test_complex_flops(self):
        p = GemmProblem(10, 10, 10, complex=True)
        assert p.flops == 8 * p.macs

    def test_cgemm_kernels_require_complex(self, gpu):
        with pytest.raises(ValueError):
            CGEMM_KERNELS["M3XU_cgemm"].time(GemmProblem(64, 64, 64), gpu)


class TestFigure4Sgemm:
    def test_m3xu_speedup_saturation(self, gpu):
        # Paper: "saturates at about 3.89x when the problem size is larger
        # than 8Kx8Kx8K".
        s8 = _speedup(SGEMM_KERNELS, "M3XU_sgemm_pipelined", "cutlass_simt_sgemm",
                      GemmProblem(8192, 8192, 8192), gpu)
        s16 = _speedup(SGEMM_KERNELS, "M3XU_sgemm_pipelined", "cutlass_simt_sgemm",
                       GemmProblem(16384, 16384, 16384), gpu)
        assert 3.7 < s8 < 4.0
        assert abs(s16 - s8) < 0.05

    def test_m3xu_speedup_grows_with_size(self, gpu):
        s1 = _speedup(SGEMM_KERNELS, "M3XU_sgemm_pipelined", "cutlass_simt_sgemm",
                      GemmProblem(1024, 1024, 1024), gpu)
        s8 = _speedup(SGEMM_KERNELS, "M3XU_sgemm_pipelined", "cutlass_simt_sgemm",
                      GemmProblem(8192, 8192, 8192), gpu)
        assert s1 < s8

    def test_ranking_at_large_size(self, gpu):
        # M3XU pipelined > M3XU (derated clock) > software schemes > SIMT.
        p = GemmProblem(8192, 8192, 8192)
        times = {name: k.time(p, gpu) for name, k in SGEMM_KERNELS.items()
                 if name != "baseline_MXU_sgemm"}
        assert times["M3XU_sgemm_pipelined"] < times["M3XU_sgemm"]
        assert times["M3XU_sgemm"] < times["cutlass_tensorop_sgemm"]
        assert times["M3XU_sgemm"] < times["EEHC_sgemm_fp32B"]
        assert times["cutlass_tensorop_sgemm"] < times["cutlass_simt_sgemm"]

    def test_software_alternatives_capped(self, gpu):
        # "Other alternatives only achieve up to 2.67x" (+ tolerance).
        for name in ("cutlass_tensorop_sgemm", "EEHC_sgemm_fp32B"):
            for s in (2048, 8192):
                sp = _speedup(SGEMM_KERNELS, name, "cutlass_simt_sgemm",
                              GemmProblem(s, s, s), gpu)
                assert sp < 3.2

    def test_nonpipelined_clock_penalty(self, gpu):
        p = GemmProblem(8192, 8192, 8192)
        ratio = (SGEMM_KERNELS["M3XU_sgemm"].time(p, gpu)
                 / SGEMM_KERNELS["M3XU_sgemm_pipelined"].time(p, gpu))
        assert ratio == pytest.approx(1.21, rel=0.05)

    def test_eehc_decouple_fraction(self, gpu):
        # "spend 14% execution time in decoupling inputs on average".
        p = GemmProblem(8192, 8192, 8192)
        specs = SGEMM_KERNELS["EEHC_sgemm_fp32B"].build(p, gpu)
        assert len(specs) == 2
        ts = [estimate_time(s, gpu).total_s for s in specs]
        frac = ts[0] / sum(ts)
        assert 0.08 < frac < 0.20


class TestFigure4Cgemm:
    def test_m3xu_cgemm_speedup(self, gpu):
        p = GemmProblem(8192, 8192, 8192, complex=True)
        sp = _speedup(CGEMM_KERNELS, "M3XU_cgemm_pipelined", "cutlass_simt_cgemm", p, gpu)
        assert 3.5 < sp < 4.0

    def test_tensorop_cgemm_near_2x(self, gpu):
        # "Software alternatives ... can only outperform baseline for up
        # to 2.1x".
        p = GemmProblem(8192, 8192, 8192, complex=True)
        sp = _speedup(CGEMM_KERNELS, "cutlass_tensorop_cgemm", "cutlass_simt_cgemm", p, gpu)
        assert 1.7 < sp < 2.3

    def test_tensorop_cgemm_is_four_launches(self, gpu):
        specs = CGEMM_KERNELS["cutlass_tensorop_cgemm"].build(
            GemmProblem(2048, 2048, 2048, complex=True), gpu
        )
        assert len(specs) == 4


class TestFigure5Peak:
    def test_m3xu_above_94pct_of_target(self, gpu):
        # Fig 5(c)/(d): "reach more than 94% of the theoretical performance".
        p = GemmProblem(8192, 8192, 8192)
        frac = SGEMM_KERNELS["M3XU_sgemm_pipelined"].tflops(p, gpu) / gpu.peak_tflops("m3xu_fp32")
        assert frac > 0.90
        pc = GemmProblem(8192, 8192, 8192, complex=True)
        frac_c = CGEMM_KERNELS["M3XU_cgemm_pipelined"].tflops(pc, gpu) / gpu.peak_tflops("m3xu_fp32c")
        assert frac_c > 0.90

    def test_software_below_70pct(self, gpu):
        # Fig 5(c): "all prior software solutions only reach up to 63%".
        p = GemmProblem(8192, 8192, 8192)
        for name in ("cutlass_tensorop_sgemm", "EEHC_sgemm_fp32B"):
            frac = SGEMM_KERNELS[name].tflops(p, gpu) / gpu.peak_tflops("m3xu_fp32")
            assert frac < 0.70


class TestSplitK:
    def test_skinny_wgrad_benefits_from_splitk(self, gpu):
        # A wgrad-shaped GEMM (tiny M*N grid, huge K) must not serialise
        # onto a handful of SMs: the adaptive spec must beat a forced
        # split_k=1 launch and keep the wave quantisation modest.
        from repro.gpusim.tiling import TileConfig
        from repro.kernels.base import gemm_kernel_spec
        from repro.kernels.constants import TC_UTIL_M3XU

        p = GemmProblem(576, 64, 200704)
        adaptive = SGEMM_KERNELS["M3XU_sgemm_pipelined"].build(p, gpu)[0]
        no_split = gemm_kernel_spec(
            "no_split", p, gpu,
            tile=TileConfig(tb_m=64, tb_n=64, tb_k=32, warps=4),
            tc_mode="m3xu_fp32", tc_macs=p.macs, macs_per_mma=16 * 8 * 8,
            tc_util=TC_UTIL_M3XU, split_k=1,
        )
        t_adaptive = estimate_time(adaptive, gpu).total_s
        t_no_split = estimate_time(no_split, gpu).total_s
        assert t_adaptive < t_no_split
        assert estimate_time(adaptive, gpu).wave_factor < 4.0
