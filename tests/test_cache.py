"""The content-addressed result cache: digests, layers, memoisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    DEFAULT_CACHE,
    ResultCache,
    cache_enabled,
    memoize,
    stable_digest,
)


@pytest.fixture(autouse=True)
def _isolated_default_cache():
    DEFAULT_CACHE.clear()
    yield
    DEFAULT_CACHE.clear()


class TestStableDigest:
    def test_deterministic(self):
        assert stable_digest(1, "x", 2.5) == stable_digest(1, "x", 2.5)

    def test_type_tagged(self):
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest(1) != stable_digest("1")
        assert stable_digest(True) != stable_digest(1)

    def test_ndarray_content_addressed(self, rng):
        a = rng.normal(size=(5, 7))
        assert stable_digest(a) == stable_digest(a.copy())
        assert stable_digest(a) != stable_digest(a + 1e-16 + 1)
        assert stable_digest(a) != stable_digest(a.astype(np.float32))
        assert stable_digest(a) != stable_digest(a.reshape(7, 5))

    def test_noncontiguous_equals_contiguous(self, rng):
        a = rng.normal(size=(6, 6))
        assert stable_digest(a[::2]) == stable_digest(a[::2].copy())

    def test_dict_order_invariant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
        assert stable_digest({"a": 1, "b": 2}) != stable_digest({"a": 2, "b": 1})

    def test_callables_keyed_by_qualname(self):
        assert stable_digest(stable_digest) == stable_digest(stable_digest)
        assert stable_digest(stable_digest) != stable_digest(memoize)

    def test_containers(self):
        assert stable_digest([1, 2]) != stable_digest((1, 2))
        assert stable_digest([1, [2]]) != stable_digest([1, [3]])


class TestResultCache:
    def test_miss_then_hit(self):
        c = ResultCache()
        assert c.get("k") is None
        c.put("k", {"v": 1})
        assert c.get("k") == {"v": 1}
        assert c.hits == 1 and c.misses == 1

    def test_hit_returns_independent_copy(self):
        c = ResultCache()
        c.put("k", [1, 2, 3])
        got = c.get("k")
        got.append(4)
        assert c.get("k") == [1, 2, 3]  # mutation did not corrupt the entry

    def test_lru_eviction(self):
        c = ResultCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refresh "a": "b" is now least recent
        c.put("c", 3)
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3

    def test_disk_layer_roundtrip(self, tmp_path):
        writer = ResultCache(directory=tmp_path)
        writer.put("deadbeef", {"rows": [1, 2]})
        reader = ResultCache(directory=tmp_path)  # fresh process stand-in
        assert reader.get("deadbeef") == {"rows": [1, 2]}

    def test_disk_layer_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ResultCache().put("cafe", 42)
        assert (tmp_path / "cafe.pkl").is_file()
        assert ResultCache().get("cafe") == 42

    def test_clear_disk(self, tmp_path):
        c = ResultCache(directory=tmp_path)
        c.put("k", 1)
        c.clear(disk=True)
        assert c.get("k") is None

    def test_info(self, tmp_path):
        c = ResultCache(maxsize=8, directory=tmp_path)
        c.put("k", 1)
        info = c.info()
        assert info["entries"] == 1 and info["maxsize"] == 8
        assert info["disk_dir"] == str(tmp_path)

    def test_disk_writes_are_atomic_renames(self, tmp_path):
        # The publish step is tmp-file + os.replace: at no point may a
        # partially written pickle sit at the final path, and no *.tmp
        # droppings may survive a successful put.
        c = ResultCache(directory=tmp_path)
        c.put("k", list(range(1000)))
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".pkl")]
        assert leftovers == []
        assert ResultCache(directory=tmp_path).get("k") == list(range(1000))

    def test_collision_counter_counts_prevented_overwrites(self, tmp_path):
        c = ResultCache(directory=tmp_path)
        assert c.info()["collisions"] == 0
        c.put("k", 1)
        assert c.info()["collisions"] == 0
        c.put("k", 1)  # same digest already on disk: a prevented overwrite
        c.put("k", 1)
        assert c.info()["collisions"] == 2
        c.clear()
        assert c.info()["collisions"] == 0

    def test_memory_only_cache_never_counts_collisions(self):
        c = ResultCache()
        c.put("k", 1)
        c.put("k", 2)
        assert c.info()["collisions"] == 0


class TestCacheEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "False", "OFF"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE", value)
        assert not cache_enabled()


class TestMemoize:
    def test_second_call_cached(self):
        calls = []

        @memoize
        def fn(x, y=2):
            calls.append((x, y))
            return x * y

        assert fn(3) == 6
        assert fn(3) == 6
        assert fn(3, y=2) == 6  # defaults normalised: same key
        assert calls == [(3, 2)]
        assert fn(4) == 8 and len(calls) == 2

    def test_ignore_excludes_knob_from_key(self):
        calls = []

        @memoize(ignore=("workers",))
        def fn(x, workers=1):
            calls.append(x)
            return x + 1

        assert fn(1, workers=1) == fn(1, workers=8) == 2
        assert calls == [1]

    def test_use_cache_false_bypasses(self):
        calls = []

        @memoize
        def fn(x):
            calls.append(x)
            return x

        fn(1)
        fn(1, use_cache=False)
        assert calls == [1, 1]

    def test_env_gate_bypasses(self, monkeypatch):
        calls = []

        @memoize
        def fn(x):
            calls.append(x)
            return x

        fn(1)
        monkeypatch.setenv("REPRO_CACHE", "0")
        fn(1)
        assert calls == [1, 1]

    def test_hit_is_mutation_safe(self):
        @memoize
        def fn():
            return {"rows": [1]}

        fn()["rows"].append(2)
        assert fn() == {"rows": [1]}

    def test_ndarray_args(self, rng):
        calls = []

        @memoize
        def fn(a):
            calls.append(1)
            return a.sum()

        a = rng.normal(size=(8, 8))
        assert fn(a) == fn(a.copy())
        assert len(calls) == 1
        fn(a + 1)
        assert len(calls) == 2


class TestCorruptionRecovery:
    """Corrupted entries are misses (evicted), never crashes."""

    def _disk_cache(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("key", {"value": [1, 2, 3]})
        cache.clear(memory=True)  # force the next get through the disk layer
        return cache, tmp_path / "key.pkl"

    def test_truncated_disk_entry_is_miss_and_evicted(self, tmp_path):
        cache, path = self._disk_cache(tmp_path)
        path.write_bytes(path.read_bytes()[:4])  # torn mid-write
        assert cache.get("key", "MISS") == "MISS"
        assert not path.exists()
        assert cache.corrupt == 1 and cache.misses == 1

    def test_garbage_disk_entry_is_miss_and_evicted(self, tmp_path):
        cache, path = self._disk_cache(tmp_path)
        path.write_bytes(b"\x00\xffnot a pickle at all")
        assert cache.get("key", None) is None
        assert not path.exists()
        assert cache.corrupt == 1

    def test_recovers_by_recomputing(self, tmp_path):
        cache, path = self._disk_cache(tmp_path)
        path.write_bytes(b"")  # zero-length file (crash before any byte)
        assert cache.get("key", "MISS") == "MISS"
        cache.put("key", "fresh")
        assert cache.get("key") == "fresh"
        assert path.exists()  # clean re-store reached disk again

    def test_corrupt_memory_entry_is_evicted(self):
        cache = ResultCache()
        cache.put("key", [1])
        cache._mem["key"] = b"\x80\x04broken"  # simulate in-memory rot
        assert cache.get("key", "MISS") == "MISS"
        assert "key" not in cache._mem
        assert cache.corrupt == 1

    def test_intact_entries_unaffected(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("good", 42)
        cache.put("bad", 43)
        (tmp_path / "bad.pkl").write_bytes(b"junk")
        cache.clear(memory=True)
        assert cache.get("good") == 42
        assert cache.get("bad", "MISS") == "MISS"
        assert cache.info()["corrupt"] == 1

    def test_memoize_recomputes_after_corruption(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        @memoize
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        DEFAULT_CACHE.clear(memory=True)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(entry.read_bytes()[:3])
        assert fn(3) == 6  # recomputed, not crashed
        assert calls == [3, 3]
