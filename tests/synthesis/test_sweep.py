"""Synthesis design sweeps: the Section VI-A secondary claims."""

import pytest

from repro.synthesis import (
    area_vs_multiplier_width,
    m3xu_overhead_vs_baseline_mantissa,
)


class TestMantissaSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return {p.baseline_significand_bits: p for p in m3xu_overhead_vs_baseline_mantissa()}

    def test_11bit_baseline_matches_table3(self, points):
        assert points[12].m3xu_area_ratio == pytest.approx(1.37, abs=0.06)

    def test_12bit_baseline_overhead_shrinks(self, points):
        # Paper: "only 16%" over a 12-bit-mantissa MXU. Our inventory
        # yields ~22% — same direction and magnitude class; the residual
        # is the buffers/48-bit-accumulation share the models apportion
        # differently.
        ratio = points[13].m3xu_area_ratio
        assert 1.10 < ratio < 1.28
        assert ratio < points[12].m3xu_area_ratio


class TestQuadraticWall:
    def test_monotone_superlinear(self):
        areas = area_vs_multiplier_width()
        ws = sorted(areas)
        vals = [areas[w] for w in ws]
        assert vals == sorted(vals)
        # Superlinear: doubling 11 -> 24 more than doubles area.
        assert areas[24] > 2.2 * areas[11]

    def test_fp64_point_an_order_of_magnitude(self):
        areas = area_vs_multiplier_width()
        assert areas[53] > 10.0


class TestAbsoluteFrequency:
    def test_plausible_freepdk45_range(self):
        from repro.synthesis import absolute_frequency_mhz

        freqs = absolute_frequency_mhz()
        for name, f in freqs.items():
            assert 200 < f < 1500, (name, f)

    def test_ratios_match_cycle_column(self):
        from repro.synthesis import absolute_frequency_mhz, synthesis_table

        freqs = absolute_frequency_mhz()
        for row in synthesis_table():
            got = freqs["baseline_mxu"] / freqs[row.design]
            assert abs(got - row.cycle) < 1e-9
