"""The synthesis cost model vs Table III."""

import pytest

from repro.synthesis import (
    PAPER_TABLE3,
    all_designs,
    baseline_mxu,
    fp32_mxu,
    m3xu_full,
    m3xu_no_complex,
    m3xu_pipelined,
    sm_area_overhead,
    synthesis_table,
)


@pytest.fixture(scope="module")
def table():
    return {r.design: r for r in synthesis_table()}


class TestAgainstPaper:
    """Every cell within 10% of the published value (relative ratios)."""

    @pytest.mark.parametrize("design", list(PAPER_TABLE3))
    @pytest.mark.parametrize("metric", ["area", "cycle", "power"])
    def test_cell(self, table, design, metric):
        ours = getattr(table[design], metric)
        ref = PAPER_TABLE3[design][metric]
        assert ours == pytest.approx(ref, rel=0.10), f"{design}.{metric}"


class TestStructuralClaims:
    def test_fp32_mxu_about_355pct(self, table):
        # Section II-B: "The FP32-MXU is 3.55x larger".
        assert 3.3 < table["fp32_mxu"].area < 3.8

    def test_fp32_mxu_power_near_8x(self, table):
        # "almost 8x power consumption".
        assert 7.0 < table["fp32_mxu"].power < 8.5

    def test_m3xu_ordering(self, table):
        # no_complex < full < pipelined in area.
        assert (
            table["baseline_mxu"].area
            < table["m3xu_no_complex"].area
            < table["m3xu"].area
            < table["m3xu_pipelined"].area
            < table["fp32_mxu"].area
        )

    def test_complex_support_cheap(self, table):
        # "4% more area overhead than just supporting FP32" (we allow 3-10%).
        delta = table["m3xu"].area - table["m3xu_no_complex"].area
        assert 0.02 < delta < 0.12

    def test_nonpipelined_cycle_stretch(self, table):
        # "21% increase in cycle time if we do not pipeline".
        assert table["m3xu"].cycle == pytest.approx(1.21, rel=0.05)
        assert table["m3xu_no_complex"].cycle == pytest.approx(1.21, rel=0.05)

    def test_pipelined_restores_clock(self, table):
        assert table["m3xu_pipelined"].cycle == pytest.approx(1.0, rel=0.04)

    def test_nonpipelined_power_saving(self, table):
        # "operate at 31% or 34% lower power".
        assert table["m3xu"].power < 0.8
        assert table["m3xu_no_complex"].power < 0.8

    def test_pipelined_power_near_baseline(self, table):
        # "7% increase in power" — we allow a band around parity.
        assert 0.9 < table["m3xu_pipelined"].power < 1.2

    def test_mantissa_bit_share_of_overhead(self):
        # "56% of that overhead comes from the arithmetic to support the
        # additional 1 bit of mantissa" — arithmetic-path components
        # (multipliers + widened accumulation) dominate the M3XU delta.
        base = baseline_mxu()
        m3 = m3xu_no_complex()
        base_parts = base.breakdown()
        m3_parts = m3.breakdown()
        arith_keys = [k for k in m3_parts if k.startswith(("mult", "acc", "shiftmux", "tree", "align"))]
        arith_delta = sum(m3_parts.get(k, 0.0) for k in arith_keys) - sum(
            base_parts.get(k, 0.0) for k in [k2 for k2 in base_parts if k2.startswith(("mult", "acc", "tree", "align"))]
        )
        total_delta = m3.area - base.area
        assert 0.4 < arith_delta / total_delta < 0.9


class TestSmOverhead:
    def test_pipelined_m3xu_4pct_of_sm(self, table):
        # "even with 47% area overhead, the area increase is only 4% to
        # the SM's die size".
        ov = sm_area_overhead(table["m3xu_pipelined"].area)
        assert 0.025 < ov < 0.06

    def test_fp32_mxu_sm_overhead_much_larger(self, table):
        # Section II-B says the FP32-MXU adds 11% to the SM while Table
        # III's M3XU adds 4% at 1.47x — figures that imply different
        # MXU/SM area shares (4.3% vs 8.5%). With the share that anchors
        # the M3XU claim, the FP32-MXU overhead comes out >= 11%, keeping
        # the paper's qualitative point: far costlier than M3XU.
        ov = sm_area_overhead(table["fp32_mxu"].area)
        assert ov > 0.11
        assert ov > 4 * sm_area_overhead(table["m3xu_pipelined"].area)


class TestInventoryMechanics:
    def test_breakdown_sums_to_area(self):
        for inv in all_designs().values():
            assert sum(inv.breakdown().values()) == pytest.approx(inv.area)

    def test_power_increases_with_frequency(self):
        inv = baseline_mxu()
        assert inv.power(1.0) > inv.power(0.8) > inv.power(0.5)

    def test_gated_components_cheap(self):
        full = m3xu_full()
        gated_cap = sum(
            c.cap for c in full.components if "cplx" in c.name or c.name == "sgnflip"
        )
        assert gated_cap < 0.02 * full.cap

    def test_designs_have_distinct_names(self):
        names = [d.name for d in all_designs().values()]
        assert len(names) == len(set(names)) == 5
