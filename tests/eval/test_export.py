"""Result export artifacts."""

import json

from repro.eval import export_csv, export_json, rows_to_csv_text, table1_throughput


class TestCsv:
    def test_rows_to_csv(self):
        r = table1_throughput()
        text = rows_to_csv_text(r)
        lines = text.strip().splitlines()
        assert lines[0].startswith("path,")
        assert len(lines) == 1 + len(r.rows)

    def test_export_csv_files(self, tmp_path):
        r = table1_throughput()
        paths = export_csv({"table1": r}, tmp_path)
        assert len(paths) == 1
        assert paths[0].read_text().startswith("path,")

    def test_empty_rows(self):
        r = table1_throughput()
        r.rows = []
        assert rows_to_csv_text(r) == ""


class TestJson:
    def test_export_roundtrip(self, tmp_path):
        r = table1_throughput()
        p = export_json({"table1": r}, tmp_path / "out" / "results.json")
        doc = json.loads(p.read_text())
        assert doc["table1"]["paper"]["fp32_tflops"] == 19.5
        assert len(doc["table1"]["rows"]) == len(r.rows)
