"""End-to-end experiment runners: the headline paper-vs-measured checks.

These are the reproduction's acceptance tests: each asserts that the
measured headline statistics land within stated bands of the paper's
numbers (bands documented per experiment in EXPERIMENTS.md).
"""

import pytest

from repro.eval import (
    ALL_EXPERIMENTS,
    accuracy_claims,
    fig2_instruction_mix,
    fig4_gemm_speedups,
    fig6_fft,
    fig8_mrf,
    fig9_knn,
    render_report,
    table1_throughput,
    table3_synthesis,
)


class TestTable1:
    def test_peaks_exact(self):
        r = table1_throughput()
        for key, ref in r.paper.items():
            assert r.measured[key] == pytest.approx(ref, rel=0.01), key


class TestTable3:
    def test_cells_within_10pct(self):
        r = table3_synthesis()
        for key, ref in r.paper.items():
            assert r.measured[key] == pytest.approx(ref, rel=0.10), key


class TestFig2:
    def test_software_needs_multiple_of_hw_instructions(self):
        r = fig2_instruction_mix()
        assert r.measured["sw_over_hw_ratio"] > 3.0


@pytest.fixture(scope="module")
def fig4():
    # Smaller sweep keeps the suite fast; bands below account for it.
    return fig4_gemm_speedups(sizes=[1024, 4096, 8192, 16384])


class TestFig4:
    def test_sgemm_max_speedup(self, fig4):
        assert fig4.measured["sgemm_m3xu_max"] == pytest.approx(3.89, abs=0.15)

    def test_sgemm_avg_speedup(self, fig4):
        assert fig4.measured["sgemm_m3xu_avg"] == pytest.approx(3.64, abs=0.35)

    def test_cgemm_max_speedup(self, fig4):
        assert fig4.measured["cgemm_m3xu_max"] == pytest.approx(3.82, abs=0.2)

    def test_cgemm_avg_speedup(self, fig4):
        assert fig4.measured["cgemm_m3xu_avg"] == pytest.approx(3.51, abs=0.35)

    def test_software_alternatives_max(self, fig4):
        assert fig4.measured["sgemm_alternatives_max"] == pytest.approx(2.67, abs=0.35)

    def test_cgemm_tensorop_max(self, fig4):
        assert fig4.measured["cgemm_tensorop_max"] == pytest.approx(2.1, abs=0.25)

    def test_nonpipelined_lower_than_pipelined(self, fig4):
        assert (
            fig4.measured["sgemm_m3xu_nonpipelined_avg"]
            < fig4.measured["sgemm_m3xu_avg"]
        )


class TestFig6:
    def test_fft_bands(self):
        r = fig6_fft()
        assert r.measured["m3xu_fft_max"] == pytest.approx(1.99, abs=0.12)
        assert r.measured["m3xu_fft_avg"] == pytest.approx(1.52, abs=0.15)
        assert r.measured["tcfft_avg"] == pytest.approx(1.0, abs=0.15)


class TestFig8:
    def test_mrf_band(self):
        r = fig8_mrf()
        assert r.measured["mrf_speedup_max"] == pytest.approx(1.26, abs=0.08)


class TestFig9:
    def test_knn_band(self):
        r = fig9_knn()
        assert r.measured["knn_speedup_max"] == pytest.approx(1.8, abs=0.1)


class TestAccuracy:
    def test_claims(self):
        r = accuracy_claims()
        assert r.measured["m3xu_bits_minus_fp32_bits"] >= 0.0
        assert r.measured["m3xu_bits_minus_3xbf16_bits"] >= 1.0
        assert r.measured["m3xu_c_bits_minus_fp32c_bits"] >= 0.0


class TestInfrastructure:
    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1",
            "section3c",
            "fig2",
            "table3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "accuracy",
        }

    def test_render_contains_paper_refs(self):
        txt = table1_throughput().render()
        assert "paper" in txt and "Table I" in txt
