"""run_all caching semantics and the report renderer."""

from __future__ import annotations

import pytest

from repro.cache import DEFAULT_CACHE
from repro.eval import runner
from repro.eval.experiments import ExperimentResult


@pytest.fixture(autouse=True)
def _isolated_cache():
    DEFAULT_CACHE.clear()
    yield
    DEFAULT_CACHE.clear()


def _stub_result(name: str) -> ExperimentResult:
    return ExperimentResult(name, [{"x": 1.0}], {"k": 1.0}, {"k": 1.0})


@pytest.fixture
def counting_experiments(monkeypatch):
    """Replace the experiment registry with counting stubs.

    Pins REPRO_WORKERS to serial: pool workers hold the real registry
    (monkeypatching only rewrites this process), so the stubs must not
    be resolved in a worker.
    """
    monkeypatch.setenv("REPRO_WORKERS", "1")
    calls: dict[str, int] = {"e1": 0, "e2": 0}

    def make(name):
        def exp():
            calls[name] += 1
            return _stub_result(name)

        exp.__qualname__ = f"stub_{name}"
        return exp

    monkeypatch.setattr(
        runner, "ALL_EXPERIMENTS", {n: make(n) for n in calls}
    )
    return calls


class TestRunAllCache:
    def test_second_sweep_hits_cache(self, counting_experiments):
        first = runner.run_all(workers=1)
        second = runner.run_all(workers=1)
        assert counting_experiments == {"e1": 1, "e2": 1}
        assert first == second

    def test_use_cache_false_recomputes_identically(self, counting_experiments):
        first = runner.run_all(workers=1)
        cold = runner.run_all(workers=1, use_cache=False)
        assert counting_experiments == {"e1": 2, "e2": 2}
        assert first == cold

    def test_env_gate_disables(self, counting_experiments, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        runner.run_all(workers=1)
        runner.run_all(workers=1)
        assert counting_experiments == {"e1": 2, "e2": 2}

    def test_partial_hit_computes_only_misses(self, counting_experiments):
        runner.run_all(only=["e1"], workers=1)
        out = runner.run_all(workers=1)  # e1 cached, e2 computed
        assert counting_experiments == {"e1": 1, "e2": 1}
        assert list(out) == ["e1", "e2"]

    def test_selection_order_preserved(self, counting_experiments):
        out = runner.run_all(only=["e2", "e1"], workers=1)
        assert list(out) == ["e2", "e1"]

    def test_cached_result_is_mutation_safe(self, counting_experiments):
        runner.run_all(workers=1)["e1"].rows.append({"junk": 0.0})
        assert runner.run_all(workers=1)["e1"].rows == [{"x": 1.0}]


class TestRenderReport:
    def test_empty_dict_renders_empty_without_running(self, counting_experiments):
        assert runner.render_report({}) == ""
        assert counting_experiments == {"e1": 0, "e2": 0}

    def test_none_runs_all(self, counting_experiments):
        text = runner.render_report()
        assert "== e1 ==" in text and "== e2 ==" in text
        assert counting_experiments == {"e1": 1, "e2": 1}

    def test_explicit_results_rendered(self):
        text = runner.render_report({"x": _stub_result("only-this")})
        assert "only-this" in text
