"""Property-based tests: quantisation, codecs and splits (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import (
    BF16,
    FP16,
    FP32,
    TF32,
    decode,
    encode,
    quantize,
    representable,
    split_fp32_m3xu,
    split_round_residual,
)

FORMATS = [FP16, BF16, TF32, FP32]

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)
fmt_strategy = st.sampled_from(FORMATS)


@given(x=finite_floats, fmt=fmt_strategy)
def test_quantize_idempotent(x, fmt):
    q1 = quantize(x, fmt)
    q2 = quantize(q1, fmt)
    np.testing.assert_array_equal(q1, q2)


@given(x=finite_floats, fmt=fmt_strategy)
def test_quantize_result_representable(x, fmt):
    assert bool(representable(quantize(x, fmt), fmt).all())


@given(x=finite_floats, fmt=fmt_strategy)
def test_quantize_sign_symmetric(x, fmt):
    np.testing.assert_array_equal(quantize(-x, fmt), -quantize(x, fmt))


@given(x=finite_floats, fmt=fmt_strategy)
def test_quantize_error_within_half_ulp(x, fmt):
    q = float(quantize(x, fmt))
    if not np.isfinite(q):
        return  # overflowed: error unbounded by ulp
    if x == 0.0:
        assert q == 0.0
        return
    exp = max(int(np.floor(np.log2(abs(x)))) if x else 0, fmt.emin)
    half_ulp = 2.0 ** (exp - fmt.mantissa_bits) / 2
    assert abs(q - x) <= half_ulp * (1 + 1e-12)


@given(
    a=finite_floats,
    b=finite_floats,
    fmt=fmt_strategy,
)
def test_quantize_monotone(a, b, fmt):
    lo, hi = min(a, b), max(a, b)
    qlo, qhi = float(quantize(lo, fmt)), float(quantize(hi, fmt))
    assert qlo <= qhi


@given(x=finite_floats, fmt=fmt_strategy)
def test_encode_decode_roundtrip(x, fmt):
    q = quantize(np.array([x]), fmt)
    if not np.isfinite(q[0]):
        return
    np.testing.assert_array_equal(decode(encode(q, fmt), fmt), q)


@given(x=st.lists(finite_floats, min_size=1, max_size=32))
def test_m3xu_split_exact_and_narrow(x):
    arr = quantize(np.array(x), FP32)
    finite = np.isfinite(arr)
    hi, lo = split_fp32_m3xu(arr)
    np.testing.assert_array_equal((hi + lo)[finite], arr[finite])
    # Both parts representable as 12-bit-significand values.
    for part in (hi, lo):
        nz = part[np.isfinite(part) & (part != 0)]
        if nz.size:
            m, _ = np.frexp(np.abs(nz))
            scaled = np.ldexp(m, 12)
            assert np.all(scaled == np.rint(scaled))


@given(
    x=st.lists(finite_floats, min_size=1, max_size=16),
    n_terms=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50)
def test_round_residual_terms_on_grid(x, n_terms):
    arr = quantize(np.array(x), FP32)
    terms = split_round_residual(arr, TF32, n_terms)
    assert len(terms) == n_terms
    for t in terms:
        assert bool(representable(t, TF32).all())
