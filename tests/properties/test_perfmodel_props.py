"""Property-based sanity of the performance model: physics, not numbers."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import KernelSpec, PipeWork, TileConfig, a100, estimate_time
from repro.kernels import SGEMM_KERNELS, GemmProblem

_GPU = a100()

work_floats = st.floats(min_value=0.0, max_value=1e14, allow_nan=False)


def _spec(tc=0.0, fma=0.0, instr=0.0, smem=0.0, dram=0.0, ctas=1024):
    return KernelSpec(
        name="p",
        work=PipeWork(
            tc_macs=tc, tc_mode="fp16", fma_lane_ops=fma,
            warp_instructions=instr, smem_bytes=smem, dram_bytes=dram,
        ),
        tile=TileConfig(),
        n_ctas=ctas,
    )


@given(tc=work_floats, fma=work_floats, dram=work_floats)
@settings(max_examples=60, deadline=None)
def test_time_positive_and_finite(tc, fma, dram):
    t = estimate_time(_spec(tc=tc, fma=fma, dram=dram), _GPU)
    assert t.total_s > 0.0
    assert t.total_s < 1e9


@given(tc=st.floats(min_value=1e6, max_value=1e13), factor=st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_more_work_never_faster(tc, factor):
    t1 = estimate_time(_spec(tc=tc), _GPU)
    t2 = estimate_time(_spec(tc=tc * factor), _GPU)
    assert t2.total_s >= t1.total_s - 1e-15


@given(
    dram=st.floats(min_value=1e6, max_value=1e12),
    bw_scale=st.floats(min_value=1.1, max_value=4.0),
)
@settings(max_examples=40, deadline=None)
def test_more_bandwidth_never_slower(dram, bw_scale):
    fast_gpu = replace(_GPU, dram_bw_gbs=_GPU.dram_bw_gbs * bw_scale)
    t_slow = estimate_time(_spec(dram=dram), _GPU)
    t_fast = estimate_time(_spec(dram=dram), fast_gpu)
    assert t_fast.total_s <= t_slow.total_s + 1e-15


@given(
    m=st.integers(256, 4096),
    k_scale=st.integers(2, 8),
)
@settings(max_examples=20, deadline=None)
def test_gemm_time_monotone_in_k(m, k_scale):
    kernel = SGEMM_KERNELS["M3XU_sgemm_pipelined"]
    t1 = kernel.time(GemmProblem(m, m, 512), _GPU)
    t2 = kernel.time(GemmProblem(m, m, 512 * k_scale), _GPU)
    assert t2 >= t1


@given(clock=st.floats(min_value=0.3, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_compute_bound_time_inverse_in_clock(clock):
    spec = _spec(tc=1e12)
    base = estimate_time(spec, _GPU)
    slowed = estimate_time(spec.scaled(clock_scale=clock), _GPU)
    want = base.tensor_s / clock
    assert abs(slowed.tensor_s - want) / want < 1e-9
