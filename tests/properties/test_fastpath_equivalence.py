"""Bit-identity of the fused/BLAS fast path against the legacy pipeline.

Every execution-path optimisation in this repo claims *bit-identical*
results: the fused grouped reduction, the float64 fast path with windowed
fallback, the split-plan driver, and the parallel batch engine. This
suite holds all of them to that claim — against the preserved legacy
implementations (``fastpath=False`` / ``use_plan=False`` /
``_batched_legacy``), across modes, rounding widths, worker counts, and
adversarial inputs (subnormals, infinities, NaNs, signed zeros, heavy
cancellation, midpoint ties).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.study import sgemm_accuracy_study
from repro.arith.accumulator import aligned_sum, aligned_sum_groups
from repro.eval.runner import run_all
from repro.gemm.batched import _batched_legacy, batched_mxu_cgemm, batched_mxu_sgemm
from repro.gemm.schemes import tensorop_sgemm_3xtf32
from repro.gemm.tiled import TiledGEMM
from repro.mxu.baseline import TensorCoreMXU
from repro.mxu.bitlevel import bit_level_fp32_dot, bit_level_fp32c_dot
from repro.mxu.m3xu import M3XU
from repro.mxu.modes import MXUMode
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex
from repro.types.rounding import RoundingMode

REAL_MODES = [MXUMode.FP32, MXUMode.FP64, MXUMode.TF32, MXUMode.BF16, MXUMode.FP16]
ALL_MODES = REAL_MODES + [MXUMode.FP32C]


def biteq(x, y) -> bool:
    """Bitwise equality, NaN payloads and zero signs included."""
    x, y = np.asarray(x), np.asarray(y)
    return x.shape == y.shape and x.dtype == y.dtype and x.tobytes() == y.tobytes()


def real_operands(rng, m, k, n, scale=1.0):
    a = quantize(rng.standard_normal((m, k)) * scale, FP32)
    b = quantize(rng.standard_normal((k, n)) * scale, FP32)
    c = quantize(rng.standard_normal((m, n)) * scale, FP32)
    return a, b, c


def complex_operands(rng, m, k, n, scale=1.0):
    a = quantize_complex(
        (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))) * scale, FP32
    )
    b = quantize_complex(
        (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))) * scale, FP32
    )
    c = quantize_complex(
        (rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))) * scale, FP32
    )
    return a, b, c


class TestAlignedSumGroups:
    """aligned_sum_groups == aligned_sum(concatenate(groups))."""

    @pytest.mark.parametrize("acc_bits", [27, 48])
    @pytest.mark.parametrize(
        "mode", [RoundingMode.NEAREST_EVEN, RoundingMode.TOWARD_ZERO]
    )
    def test_matches_monolithic(self, rng, acc_bits, mode):
        groups = [rng.standard_normal((6, 5, w)) * 10.0**rng.integers(-8, 8)
                  for w in (3, 1, 7, 2)]
        got = aligned_sum_groups(groups, acc_bits=acc_bits, mode=mode)
        want = aligned_sum(
            np.concatenate(groups, axis=-1), axis=-1, acc_bits=acc_bits, mode=mode
        )
        assert biteq(got, want)

    def test_broadcast_groups(self, rng):
        full = rng.standard_normal((4, 5, 3))
        bcast = rng.standard_normal((1, 5, 2))  # broadcasts over the lead axis
        got = aligned_sum_groups([full, bcast])
        want = aligned_sum(
            np.concatenate([full, np.broadcast_to(bcast, (4, 5, 2))], axis=-1), axis=-1
        )
        assert biteq(got, want)

    def test_nonfinite_propagation(self, rng):
        g1 = rng.standard_normal((8, 4))
        g2 = rng.standard_normal((8, 3))
        g1[0, 0] = np.inf
        g1[1, 1] = -np.inf
        g2[2, 0] = np.nan
        g2[3, 1] = np.inf
        g1[3, 2] = -np.inf
        got = aligned_sum_groups([g1, g2])
        want = aligned_sum(np.concatenate([g1, g2], axis=-1), axis=-1)
        assert biteq(got, want)

    def test_empty_and_zero_groups(self, rng):
        g = rng.standard_normal((3, 4))
        empty = np.zeros((3, 0))
        assert biteq(aligned_sum_groups([g, empty]), aligned_sum(g, axis=-1))
        zeros = np.zeros((3, 2))
        assert biteq(
            aligned_sum_groups([zeros, np.zeros((3, 0))]),
            aligned_sum(zeros, axis=-1),
        )

    def test_fp64_path(self, rng):
        groups = [rng.standard_normal((4, 3)), rng.standard_normal((4, 2))]
        got = aligned_sum_groups(groups, acc_bits=None)
        want = np.concatenate(groups, axis=-1).sum(axis=-1)
        assert biteq(got, want)


class TestMmaFastVsLegacy:
    """M3XU.mma / TensorCoreMXU.mma: fastpath=True == fastpath=False."""

    @pytest.mark.parametrize("mode", REAL_MODES)
    def test_real_modes(self, rng, mode):
        a, b, c = real_operands(rng, 8, 16, 4)
        got = M3XU().mma(a, b, c, mode)
        want = M3XU(fastpath=False).mma(a, b, c, mode)
        assert biteq(got, want)

    def test_fp32c(self, rng):
        a, b, c = complex_operands(rng, 8, 16, 4)
        got = M3XU().mma(a, b, c, MXUMode.FP32C)
        want = M3XU(fastpath=False).mma(a, b, c, MXUMode.FP32C)
        assert biteq(got, want)

    @pytest.mark.parametrize("mode", [MXUMode.TF32, MXUMode.BF16, MXUMode.FP16])
    def test_tensorcore(self, rng, mode):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 4))
        c = rng.standard_normal((8, 4))
        got = TensorCoreMXU().mma(a, b, c, mode)
        want = TensorCoreMXU(fastpath=False).mma(a, b, c, mode)
        assert biteq(got, want)

    @pytest.mark.parametrize(
        "scale",
        [1e-40, 1e-30, 1e30, 1.0],
        ids=["subnormal", "tiny", "huge", "unit"],
    )
    def test_extreme_scales(self, rng, scale):
        a, b, c = real_operands(rng, 6, 12, 5, scale=scale)
        got = M3XU().mma_fp32(a, b, c)
        want = M3XU(fastpath=False).mma_fp32(a, b, c)
        assert biteq(got, want)

    def test_nonfinite_inputs(self, rng):
        a, b, c = real_operands(rng, 6, 12, 5)
        a[0, 0] = np.inf
        a[1, 1] = np.nan
        b[2, 0] = -np.inf
        c[3, 3] = np.nan
        got = M3XU().mma_fp32(a, b, c)
        want = M3XU(fastpath=False).mma_fp32(a, b, c)
        assert biteq(got, want)

    def test_signed_zero_and_cancellation(self, rng):
        # Rows of A are exact negations -> many exact-zero dot products,
        # which the fast path must route through the windowed fallback to
        # get the canonical zero sign.
        a = quantize(rng.standard_normal((4, 8)), FP32)
        a = np.concatenate([a, -a], axis=0)
        b = quantize(rng.standard_normal((8, 5)), FP32)
        ones = np.ones((8, 5))
        c = np.zeros((8, 5))
        for bb in (b, ones):
            got = M3XU().mma_fp32(a @ np.eye(8), bb, c)  # noqa: mixed signs
            want = M3XU(fastpath=False).mma_fp32(a @ np.eye(8), bb, c)
            assert biteq(got, want)
        # negative-zero C operand
        cz = np.where(rng.random((8, 5)) < 0.5, -0.0, 0.0)
        za = np.zeros((8, 8))
        got = M3XU().mma_fp32(za, b, cz)
        want = M3XU(fastpath=False).mma_fp32(za, b, cz)
        assert biteq(got, want)

    def test_midpoint_ties(self):
        # 1 + 2^-24 is an FP32 midpoint: the result hinges on one bit far
        # below the leading addend -- exactly where a sloppy fast path
        # would round differently.
        a = np.array([[1.0, 2.0**-24, 2.0**-25, -(2.0**-25)]])
        b = np.ones((4, 1))
        for c in (0.0, 2.0**-24, -(2.0**-24)):
            got = M3XU().mma_fp32(a, b, c)
            want = M3XU(fastpath=False).mma_fp32(a, b, c)
            assert biteq(got, want)

    @given(
        k=st.integers(1, 24),
        seed=st.integers(0, 2**31),
        expo=st.integers(-12, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_property(self, k, seed, expo):
        rng = np.random.default_rng(seed)
        a, b, c = real_operands(rng, 4, k, 3, scale=2.0**expo)
        assert biteq(
            M3XU().mma_fp32(a, b, c), M3XU(fastpath=False).mma_fp32(a, b, c)
        )

    @given(k=st.integers(1, 16), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_random_property_complex(self, k, seed):
        rng = np.random.default_rng(seed)
        a, b, c = complex_operands(rng, 3, k, 4)
        assert biteq(
            M3XU().mma_fp32c(a, b, c), M3XU(fastpath=False).mma_fp32c(a, b, c)
        )


class TestPlanVsLegacyDriver:
    """TiledGEMM use_plan=True == use_plan=False (per-chunk re-splitting)."""

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_ragged_k(self, rng, mode):
        k = 37  # not a multiple of any instruction K -> ragged tail chunk
        if mode is MXUMode.FP32C:
            a = rng.standard_normal((9, k)) + 1j * rng.standard_normal((9, k))
            b = rng.standard_normal((k, 7)) + 1j * rng.standard_normal((k, 7))
            c = rng.standard_normal((9, 7)) + 1j * rng.standard_normal((9, 7))
        else:
            a = rng.standard_normal((9, k))
            b = rng.standard_normal((k, 7))
            c = rng.standard_normal((9, 7))
        mxu = M3XU()
        got = TiledGEMM(mxu, mode).run(a, b, c)
        want = TiledGEMM(M3XU(fastpath=False), mode, use_plan=False).run(a, b, c)
        assert biteq(got, want)

    def test_plan_only_differs_from_fastpath_only_never(self, rng):
        # plan + legacy-mma and no-plan + fastpath-mma both equal baseline.
        a, b, c = real_operands(rng, 8, 29, 6)
        base = TiledGEMM(M3XU(fastpath=False), MXUMode.FP32, use_plan=False).run(a, b, c)
        assert biteq(TiledGEMM(M3XU(fastpath=False), MXUMode.FP32).run(a, b, c), base)
        assert biteq(
            TiledGEMM(M3XU(), MXUMode.FP32, use_plan=False).run(a, b, c), base
        )

    def test_split_scheme(self, rng):
        a, b, c = real_operands(rng, 12, 33, 10)
        got = tensorop_sgemm_3xtf32(a, b, c, TensorCoreMXU())
        want = tensorop_sgemm_3xtf32(a, b, c, TensorCoreMXU(fastpath=False))
        assert biteq(got, want)


class TestBatchedAndParallel:
    """Batched plan path == legacy loop; workers=1 == workers=4."""

    def test_batched_sgemm(self, rng):
        a = rng.standard_normal((6, 8, 21))
        b = rng.standard_normal((6, 21, 5))
        got = batched_mxu_sgemm(a, b)
        want = _batched_legacy(
            quantize(a, FP32), quantize(b, FP32), MXUMode.FP32, M3XU(fastpath=False)
        )
        assert biteq(got, want)

    def test_batched_cgemm(self, rng):
        a = rng.standard_normal((6, 4, 13)) + 1j * rng.standard_normal((6, 4, 13))
        b = rng.standard_normal((6, 13, 5)) + 1j * rng.standard_normal((6, 13, 5))
        got = batched_mxu_cgemm(a, b)
        want = _batched_legacy(
            quantize_complex(a, FP32),
            quantize_complex(b, FP32),
            MXUMode.FP32C,
            M3XU(fastpath=False),
        )
        assert biteq(got, want)

    def test_batched_workers_identical(self, rng):
        a = rng.standard_normal((7, 8, 16))
        b = rng.standard_normal((7, 16, 6))
        assert biteq(
            batched_mxu_sgemm(a, b, workers=1), batched_mxu_sgemm(a, b, workers=4)
        )
        ac = a + 1j * rng.standard_normal(a.shape)
        bc = b + 1j * rng.standard_normal(b.shape)
        assert biteq(
            batched_mxu_cgemm(ac, bc, workers=1), batched_mxu_cgemm(ac, bc, workers=4)
        )

    def test_run_all_workers_identical(self):
        # use_cache=False so the second sweep really exercises the
        # parallel path instead of replaying the first from cache.
        serial = run_all(only=["table1", "fig2"], workers=1, use_cache=False)
        fanned = run_all(only=["table1", "fig2"], workers=4, use_cache=False)
        assert list(serial) == list(fanned)
        for name in serial:
            assert serial[name] == fanned[name]

    def test_accuracy_study_workers_identical(self):
        serial = sgemm_accuracy_study(m=8, n=8, k=16, workers=1, use_cache=False)
        fanned = sgemm_accuracy_study(m=8, n=8, k=16, workers=4, use_cache=False)
        assert serial == fanned


class TestBitlevelCrossValidation:
    """The fast path still matches the bit-level golden datapath."""

    @given(data=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, min_value=-1e8, max_value=1e8),
        min_size=17, max_size=17,
    ))
    @settings(max_examples=25, deadline=None)
    def test_fp32_dot(self, data):
        a = quantize(np.array(data[:8]), FP32)
        b = quantize(np.array(data[8:16]), FP32)
        c = float(quantize(np.array(data[16]), FP32))
        got = M3XU().mma_fp32(a[None, :], b[:, None], c)[0, 0]
        assert got == bit_level_fp32_dot(a, b, c)

    def test_fp32c_dot(self, rng):
        a = quantize_complex(
            rng.standard_normal(6) + 1j * rng.standard_normal(6), FP32
        )
        b = quantize_complex(
            rng.standard_normal(6) + 1j * rng.standard_normal(6), FP32
        )
        got = M3XU().mma_fp32c(a[None, :], b[:, None], 0.0)[0, 0]
        assert got == bit_level_fp32c_dot(a, b, 0.0)
