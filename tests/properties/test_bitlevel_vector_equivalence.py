"""Bit-identity of the vectorized bit-level engine against the scalar oracle.

The vectorized datapath (:mod:`repro.mxu.vectorized`) claims *bit-identical*
results to the scalar :class:`~repro.mxu.bitlevel.BitAccumulator` reference
— across modes, adversarial operands (subnormals, signed zeros, extreme
exponent spans, cancellation, the complex sign-flip), injected product
faults, campaign runs, and parallel-worker fan-out. This suite holds the
claim with exhaustive fixed corpora plus hypothesis-randomized sweeps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.study import BITLEVEL_SGEMM_IMPLS, sgemm_accuracy_study
from repro.gemm.tiled import mxu_cgemm, mxu_sgemm
from repro.mxu.bitlevel import bit_level_fp32_dot, bit_level_fp32c_dot
from repro.mxu.faults import FaultSpec, FaultStage, FaultyM3XU
from repro.mxu.modes import MXUMode
from repro.mxu.vectorized import (
    BitLevelMXU,
    ProductFault,
    product_slot_count,
    scalar_mma_fp32,
    scalar_mma_fp32c,
    vector_mma_fp32,
    vector_mma_fp32c,
)
from repro.resilience.campaign import BITLEVEL_STAGES, CampaignConfig, run_campaign
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex


def biteq(x, y) -> bool:
    """Bitwise equality, zero signs included."""
    x, y = np.asarray(x), np.asarray(y)
    return x.shape == y.shape and x.dtype == y.dtype and x.tobytes() == y.tobytes()


# Adversarial FP32 values: signed zeros, smallest/largest subnormals, the
# normal boundary, max normal, exact powers of two, rounding-tie makers,
# and near-cancellation pairs.
ADVERSARIAL = quantize(
    np.array([
        0.0, -0.0,
        1e-45, -1e-45,              # smallest subnormal
        1.1754942e-38,              # largest subnormal
        1.1754944e-38,              # smallest normal
        3.4028235e38, -3.4028235e38,  # max normal
        1.0, -1.0, 2.0**-24, 2.0**24,
        1.0000001, 0.99999994,      # neighbours of 1.0
        1.5, -1.5, 3.0, 0.333251953125,
    ]),
    FP32,
)


def adversarial_matrix(rng, shape):
    return rng.choice(ADVERSARIAL, size=shape)


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


class TestAdversarialBitIdentity:
    def test_fp32_adversarial_tiles(self, rng):
        for _ in range(30):
            a = adversarial_matrix(rng, (4, 6))
            b = adversarial_matrix(rng, (6, 3))
            c = adversarial_matrix(rng, (4, 3))
            assert biteq(vector_mma_fp32(a, b, c), scalar_mma_fp32(a, b, c))

    def test_fp32c_adversarial_tiles(self, rng):
        for _ in range(20):
            a = adversarial_matrix(rng, (3, 4)) + 1j * adversarial_matrix(rng, (3, 4))
            b = adversarial_matrix(rng, (4, 3)) + 1j * adversarial_matrix(rng, (4, 3))
            c = adversarial_matrix(rng, (3, 3)) + 1j * adversarial_matrix(rng, (3, 3))
            assert biteq(vector_mma_fp32c(a, b, c), scalar_mma_fp32c(a, b, c))

    def test_max_shift_cancellation(self):
        # Max-magnitude products against subnormal dust: the accumulator
        # anchor jumps by far more than the 48-bit window, and the large
        # terms cancel so the re-rounded residue decides the result.
        a = np.array([[3.4028235e38, -3.4028235e38, 1e-45, 1.1754942e-38, 1.0]])
        b = np.array([[3.4028234e38], [3.4028234e38], [1e-45], [-1e-45], [2.0**-24]])
        aq, bq = quantize(a, FP32), quantize(b, FP32)
        v = vector_mma_fp32(aq, bq, 0.0)
        assert biteq(v, scalar_mma_fp32(aq, bq, 0.0))
        assert biteq(v[0, 0], np.float64(bit_level_fp32_dot(aq[0], bq[:, 0], 0.0)))

    def test_complex_sign_flip_cancellation(self, rng):
        # Pure-imaginary rows: the real accumulator sees only the negated
        # imag*imag lanes (Eq. 9's subtraction), exercising the sign mask.
        a = 1j * adversarial_matrix(rng, (3, 5))
        b = 1j * adversarial_matrix(rng, (5, 2))
        v = vector_mma_fp32c(a, b, 0.0)
        assert biteq(v, scalar_mma_fp32c(a, b, 0.0))
        ref = np.array([
            [bit_level_fp32c_dot(a[m], b[:, n], 0.0) for n in range(2)]
            for m in range(3)
        ])
        assert biteq(v, ref)

    def test_signed_zero_inputs(self):
        # -0.0 operands contribute zero-significand products; like the
        # scalar oracle, the empty accumulation yields +0.0 (the window
        # has no sign to preserve), and a negative residue that rounds
        # to zero yields -0.0 — both engines must agree on both.
        a = np.array([[-0.0, 0.0, -0.0, 0.0]])
        b = np.array([[-0.0], [0.0], [-0.0], [-0.0]])
        c = np.array([[-0.0]])
        v = vector_mma_fp32(a, b, c)
        s = scalar_mma_fp32(a, b, c)
        assert biteq(v, s)
        assert biteq(v[0, 0], np.float64(bit_level_fp32_dot(a[0], b[:, 0], -0.0)))
        # Negative value rounding to zero: signed zero comes out.
        tiny = quantize(np.array([[-1e-45]]), FP32)
        tb = quantize(np.array([[1e-45]]), FP32)
        v2 = vector_mma_fp32(tiny, tb, 0.0)
        assert biteq(v2, scalar_mma_fp32(tiny, tb, 0.0))
        assert v2[0, 0] == 0.0 and np.signbit(v2[0, 0])


class TestGemmEngineIdentity:
    def test_sgemm_engines_identical(self, rng, monkeypatch):
        a = rng.standard_normal((9, 17)) * 10.0 ** rng.integers(-5, 5, (9, 17))
        b = rng.standard_normal((17, 8))
        monkeypatch.setenv("REPRO_BITLEVEL", "vector")
        vec = mxu_sgemm(a, b, fused=False)
        monkeypatch.setenv("REPRO_BITLEVEL", "scalar")
        assert biteq(mxu_sgemm(a, b, fused=False), vec)

    def test_cgemm_engines_identical(self, rng, monkeypatch):
        a = rng.standard_normal((5, 9)) + 1j * rng.standard_normal((5, 9))
        b = rng.standard_normal((9, 4)) + 1j * rng.standard_normal((9, 4))
        monkeypatch.setenv("REPRO_BITLEVEL", "vector")
        vec = mxu_cgemm(a, b, fused=False)
        monkeypatch.setenv("REPRO_BITLEVEL", "scalar")
        assert biteq(mxu_cgemm(a, b, fused=False), vec)

    def test_study_workers_identical_bitlevel(self):
        # The bit-level roster through the accuracy-study fan-out: the
        # result must not depend on the worker count.
        serial = sgemm_accuracy_study(
            m=6, n=6, k=12, impls=BITLEVEL_SGEMM_IMPLS, workers=1, use_cache=False)
        fanned = sgemm_accuracy_study(
            m=6, n=6, k=12, impls=BITLEVEL_SGEMM_IMPLS, workers=4, use_cache=False)
        assert serial == fanned


class TestFaultInjectionParity:
    def test_random_product_faults_agree(self, rng):
        a = quantize(rng.standard_normal((4, 4)), FP32)
        b = quantize(rng.standard_normal((4, 4)), FP32)
        for mode, va, vb in (
            (MXUMode.FP32, a, b),
            (MXUMode.FP32C,
             quantize_complex(a + 1j * b, FP32),
             quantize_complex(b - 1j * a, FP32)),
        ):
            n_slots = product_slot_count(mode, 4)
            fn_v = vector_mma_fp32 if mode is MXUMode.FP32 else vector_mma_fp32c
            fn_s = scalar_mma_fp32 if mode is MXUMode.FP32 else scalar_mma_fp32c
            for _ in range(10):
                pf = ProductFault(
                    slot=int(rng.integers(n_slots)),
                    element=(int(rng.integers(4)), int(rng.integers(4))),
                    bit=int(rng.integers(24)),
                )
                assert biteq(
                    fn_v(va, vb, 0.0, product_fault=pf),
                    fn_s(va, vb, 0.0, product_fault=pf),
                )

    def test_faulty_unit_engine_parity(self, rng):
        # The same armed FaultSpec through FaultyM3XU resolves to the
        # same injected upset and the same corrupted output per engine.
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((8, 5))
        for stage in BITLEVEL_STAGES:
            spec = FaultSpec.random(np.random.default_rng(99), stage, n_calls=2)
            outs = []
            for engine in ("vector", "scalar"):
                unit = FaultyM3XU(spec, BitLevelMXU(engine=engine))
                outs.append(mxu_sgemm(a, b, mxu=unit))
                assert unit.fired
            assert biteq(outs[0], outs[1]), stage

    def test_product_fault_requires_bitlevel_unit(self, rng):
        from repro.mxu.m3xu import M3XU

        spec = FaultSpec(stage=FaultStage.PRODUCT)
        with pytest.raises(ValueError):
            mxu_sgemm(np.ones((4, 4)), np.ones((4, 4)), mxu=FaultyM3XU(spec, M3XU()))


class TestCampaignEngineIdentity:
    def test_campaign_records_identical_across_engines(self, monkeypatch):
        records = {}
        for engine in ("vector", "scalar"):
            monkeypatch.setenv("REPRO_BITLEVEL", engine)
            cfg = CampaignConfig(
                trials=10, m=10, n=8, k=8, engine="bitlevel",
                stages=BITLEVEL_STAGES,
            )
            records[engine] = run_campaign(cfg).records
        assert records["vector"] == records["scalar"]

    def test_product_stage_needs_bitlevel_engine(self):
        with pytest.raises(ValueError):
            CampaignConfig(stages=BITLEVEL_STAGES, engine="m3xu")


# ---------------------------------------------------------------------------
# Hypothesis-randomized sweeps
# ---------------------------------------------------------------------------

vals = st.floats(allow_nan=False, allow_infinity=False,
                 min_value=-1e30, max_value=1e30)


@given(data=st.lists(vals, min_size=12, max_size=12),
       cval=vals)
@settings(max_examples=40, deadline=None)
def test_fp32_tile_identity_sweep(data, cval):
    a = quantize(np.array(data[:6]).reshape(2, 3), FP32)
    b = quantize(np.array(data[6:]).reshape(3, 2), FP32)
    c = quantize(np.full((2, 2), cval), FP32)
    assert biteq(vector_mma_fp32(a, b, c), scalar_mma_fp32(a, b, c))


@given(data=st.lists(vals, min_size=24, max_size=24))
@settings(max_examples=30, deadline=None)
def test_fp32c_tile_identity_sweep(data):
    re = np.array(data[:12])
    im = np.array(data[12:])
    a = quantize_complex((re[:6] + 1j * im[:6]).reshape(2, 3), FP32)
    b = quantize_complex((re[6:] + 1j * im[6:]).reshape(3, 2), FP32)
    assert biteq(vector_mma_fp32c(a, b, 0.0), scalar_mma_fp32c(a, b, 0.0))


@given(scale_a=st.integers(min_value=-30, max_value=30),
       scale_b=st.integers(min_value=-30, max_value=30),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_scaled_gemm_identity_sweep(scale_a, scale_b, seed):
    # Wildly mismatched operand magnitudes force large accumulator
    # anchor jumps mid-sequence — the hardest case for the window logic.
    r = np.random.default_rng(seed)
    a = quantize(r.standard_normal((3, 8)) * 2.0**scale_a, FP32)
    b = quantize(r.standard_normal((8, 3)) * 2.0**scale_b, FP32)
    assert biteq(vector_mma_fp32(a, b, 0.0), scalar_mma_fp32(a, b, 0.0))
