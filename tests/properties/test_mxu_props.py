"""Property-based tests of the MXU functional models' core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import exact_dot
from repro.mxu import M3XU, MXUMode
from repro.types import FP32, quantize

_UNIT = M3XU()

small_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


def _fp32_matrix(values, rows, cols):
    return quantize(np.array(values, dtype=np.float64).reshape(rows, cols), FP32)


@given(
    a_vals=st.lists(small_floats, min_size=8, max_size=8),
    b_vals=st.lists(small_floats, min_size=8, max_size=8),
    c_val=small_floats,
)
@settings(max_examples=60, deadline=None)
def test_fp32_mma_within_half_ulp(a_vals, b_vals, c_val):
    """For arbitrary FP32 inputs, one M3XU FP32 MMA is within half an ulp
    of the exact dot product — correctly rounded except when an FP32
    midpoint tie is broken only by bits below the 48-bit accumulation
    window (a case hypothesis does construct; FP32 FMA chains lose those
    bits too, so the paper's no-additional-error claim is unaffected)."""
    from fractions import Fraction

    a = _fp32_matrix(a_vals, 2, 4)
    b = _fp32_matrix(b_vals, 4, 2)
    c = float(quantize(np.array(c_val), FP32))
    d = _UNIT.mma_fp32(a, b, c)
    for i in range(2):
        for j in range(2):
            exact = Fraction(c)
            for x, y in zip(a[i], b[:, j]):
                exact += Fraction(float(x)) * Fraction(float(y))
            ref = exact_dot(list(a[i]), list(b[:, j]), c, FP32)
            got = float(d[i, j])
            if got == ref:
                continue
            # Tie-break divergence: both candidates within half an ulp
            # (plus a one-window-LSB allowance) of the exact value.
            if exact == 0:
                assert got == 0.0
                continue
            mag = abs(exact)
            e = mag.numerator.bit_length() - mag.denominator.bit_length()
            half_ulp = Fraction(2) ** (max(e, -126) - 24)
            tol = half_ulp * (1 + Fraction(1, 1 << 20))
            assert abs(Fraction(got) - exact) <= tol


@given(
    re_vals=st.lists(small_floats, min_size=4, max_size=4),
    im_vals=st.lists(small_floats, min_size=4, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_fp32c_conjugate_symmetry(re_vals, im_vals):
    """conj(a) . conj(b) == conj(a . b) for the hardware CGEMM (the
    rounding is sign-symmetric, so conjugation commutes)."""
    a = quantize(np.array(re_vals[:2]), FP32).reshape(1, 2) + 1j * quantize(
        np.array(im_vals[:2]), FP32
    ).reshape(1, 2)
    b = quantize(np.array(re_vals[2:]), FP32).reshape(2, 1) + 1j * quantize(
        np.array(im_vals[2:]), FP32
    ).reshape(2, 1)
    d = _UNIT.mma_fp32c(a, b, 0.0)
    d_conj = _UNIT.mma_fp32c(np.conj(a), np.conj(b), 0.0)
    np.testing.assert_array_equal(d_conj, np.conj(d))


@given(
    vals=st.lists(small_floats, min_size=8, max_size=8),
    scale_pow=st.integers(min_value=-40, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_fp32_mma_scale_invariance(vals, scale_pow):
    """Scaling A by a power of two scales D by the same factor exactly
    (binary scaling commutes with every rounding in the unit)."""
    a = _fp32_matrix(vals[:4], 1, 4)
    b = _fp32_matrix(vals[4:], 4, 1)
    s = 2.0**scale_pow
    a_s = quantize(a * s, FP32)
    # Exact equivariance requires the scaled operands to stay in the
    # normal range (subnormal quantisation legitimately drops bits).
    nz = a_s[a_s != 0.0]
    if nz.size and np.min(np.abs(nz)) < 2.0**-126:
        return
    d1 = _UNIT.mma_fp32(a, b, 0.0)
    d2 = _UNIT.mma_fp32(a_s, b, 0.0)
    # Stay well clear of the subnormal boundary: near 2^-126 the scaled
    # result's rounding grid coarsens and exact equivariance ends.
    finite = np.isfinite(d2) & np.isfinite(d1 * s) & (np.abs(d1 * s) >= 2.0**-100)
    np.testing.assert_array_equal(d2[finite], (d1 * s)[finite])


@given(vals=st.lists(small_floats, min_size=8, max_size=8))
@settings(max_examples=40, deadline=None)
def test_fp32_mma_negation_antisymmetry(vals):
    a = _fp32_matrix(vals[:4], 1, 4)
    b = _fp32_matrix(vals[4:], 4, 1)
    d = _UNIT.mma_fp32(a, b, 0.0)
    dn = _UNIT.mma_fp32(-a, b, 0.0)
    np.testing.assert_array_equal(dn, -d)


@given(
    vals=st.lists(small_floats, min_size=12, max_size=12),
    perm_seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_fp32_mma_k_permutation_invariance(vals, perm_seed):
    """Within one MMA the wide accumulation is order-free: permuting the
    K axis of both operands cannot change the result."""
    a = _fp32_matrix(vals[:4], 1, 4)
    b = _fp32_matrix(vals[4:8], 4, 1)
    perm = np.random.default_rng(perm_seed).permutation(4)
    d1 = _UNIT.mma_fp32(a, b, 0.0)
    d2 = _UNIT.mma_fp32(a[:, perm], b[perm, :], 0.0)
    np.testing.assert_array_equal(d1, d2)
