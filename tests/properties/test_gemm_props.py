"""Property-based tests on the GEMM drivers and the bit-level datapath."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import exact_dot
from repro.gemm import mxu_sgemm, sgemm_simt
from repro.mxu import bit_level_fp32_dot
from repro.types import FP32, quantize

vals = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e8, max_value=1e8)


@given(data=st.lists(vals, min_size=18, max_size=18))
@settings(max_examples=40, deadline=None)
def test_bit_level_always_correctly_rounded(data):
    """Arbitrary inputs: the bit-level datapath equals exact rounding."""
    a = quantize(np.array(data[:9]), FP32)
    b = quantize(np.array(data[9:]), FP32)
    got = bit_level_fp32_dot(a, b, 0.0)
    ref = exact_dot(list(a), list(b), 0.0, FP32)
    assert got == ref


@given(
    m=st.integers(2, 6),
    n=st.integers(2, 6),
    k=st.integers(1, 20),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_mxu_sgemm_error_bounded(m, n, k, seed):
    """Any shape: the M3XU GEMM stays within the chunked-rounding bound."""
    rng = np.random.default_rng(seed)
    a = quantize(rng.uniform(-1, 1, size=(m, k)), FP32)
    b = quantize(rng.uniform(-1, 1, size=(k, n)), FP32)
    got = mxu_sgemm(a, b)
    ref = a @ b
    mag = np.abs(a) @ np.abs(b)
    chunks = max(1, -(-k // 4))
    bound = (chunks + 1) * 2.0**-24 * mag + 1e-300
    assert np.all(np.abs(got - ref) <= bound)


@given(
    k=st.integers(1, 16),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_m3xu_never_less_accurate_than_simt_elementwise_agg(k, seed):
    """Aggregate error of M3XU <= aggregate error of the FP32 FMA chain."""
    rng = np.random.default_rng(seed)
    a = quantize(rng.uniform(0.1, 1.0, size=(4, k)), FP32)
    b = quantize(rng.uniform(0.1, 1.0, size=(k, 4)), FP32)
    ref = a @ b
    err_m3 = np.sum(np.abs(mxu_sgemm(a, b) - ref))
    err_simt = np.sum(np.abs(sgemm_simt(a, b) - ref))
    # Within one MMA the M3XU result is correctly rounded; across chunk
    # boundaries the FP32 re-rounding points differ from the chain's, so
    # individual draws can tip either way by a fraction of an ulp — the
    # aggregate stays comparable (and is typically ~2x lower).
    assert err_m3 <= err_simt * 1.6 + 1e-10


@given(
    scale=st.integers(-30, 30),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=20, deadline=None)
def test_gemm_binary_scale_equivariance(scale, seed):
    """Scaling inputs by powers of two scales outputs exactly (no rounding
    interacts with binary scaling until over/underflow)."""
    rng = np.random.default_rng(seed)
    a = quantize(rng.uniform(0.5, 2.0, size=(4, 8)), FP32)
    b = quantize(rng.uniform(0.5, 2.0, size=(8, 4)), FP32)
    s = 2.0**scale
    d1 = mxu_sgemm(a, b)
    d2 = mxu_sgemm(a * s, b)
    np.testing.assert_array_equal(d2, d1 * s)
