"""Segmented exact reduction == sequential running-anchor oracle.

The blocked kernels in :mod:`repro.arith.accumulator` replace the slot
walk of :func:`sequential_windowed_sum` with a segmented reduction whose
step count is the number of anchor raises; the chained GEMM kernel in
:mod:`repro.mxu.vectorized` additionally folds the C operand of every
K-chunk through a two-slot merge. All of them claim *bit-identity* with
the sequential discipline. This suite holds them to it on the
trajectories where segmented algorithms classically go wrong: anchor
raises exactly at block boundaries, long zero runs, sign cancellation
down to the window LSB, midpoint ties under both rounding modes, and
hypothesis-driven random sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arith.accumulator import (
    _ANCHOR_SENTINEL,
    segmented_windowed_sum,
    segmented_windowed_sum_f32,
    sequential_windowed_sum,
)
from repro.mxu.vectorized import chained_vector_fp32, vector_mma_fp32
from repro.types.formats import FP32
from repro.types.quantize import quantize
from repro.types.rounding import RoundingMode

MODES = [RoundingMode.NEAREST_EVEN, RoundingMode.TOWARD_ZERO]


def biteq(x, y) -> bool:
    x, y = np.asarray(x), np.asarray(y)
    return x.shape == y.shape and x.tobytes() == y.tobytes()


def assert_segmented_matches(sign, sig, lsb, acc_bits, mode):
    """segmented == sequential on (value, window), bit for bit."""
    want_v, want_w = sequential_windowed_sum(sign, sig, lsb, acc_bits, mode)
    got_v, got_w = segmented_windowed_sum(sign, sig, lsb, acc_bits, mode)
    assert biteq(got_v, want_v), f"value diverged (acc_bits={acc_bits}, {mode})"
    assert biteq(got_w, want_w), f"window diverged (acc_bits={acc_bits}, {mode})"


def assert_f32_matches(signed_sig, lsb, acc_bits, mode):
    """packed float32 kernel == sequential on the unpacked triple."""
    sig_i = np.abs(signed_sig).astype(np.int64)
    sign_i = np.signbit(signed_sig).astype(np.int8)
    want_v, want_w = sequential_windowed_sum(sign_i, sig_i, lsb, acc_bits, mode)
    got_v, got_w = segmented_windowed_sum_f32(
        signed_sig, lsb.astype(np.int16), acc_bits, mode
    )
    assert biteq(got_v, want_v)
    assert biteq(got_w, want_w)


class TestAdversarialTrajectories:
    """Handcrafted anchor trajectories targeting the segment seams."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("acc_bits", [12, 27, 48])
    def test_anchor_raise_at_every_slot(self, mode, acc_bits):
        # Strictly ascending MSBs: every slot is its own segment.
        slots = 24
        sig = np.full((3, slots), 5, dtype=np.int64)
        lsb = (np.arange(slots, dtype=np.int64) * 7)[None, :] + np.array(
            [[0], [3], [11]], dtype=np.int64
        )
        sign = np.zeros_like(sig)
        sign[1, ::2] = 1
        assert_segmented_matches(sign, sig, lsb, acc_bits, mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_descending_then_spike(self, mode):
        # One raise at slot 0, a long constant-anchor run of below-window
        # addends, then a late spike that re-rounds the whole partial.
        sig = np.array([[1 << 20] + [3] * 14 + [1 << 22]], dtype=np.int64)
        lsb = np.array([[40] + list(range(-20, -6)) + [90]], dtype=np.int64)
        sign = np.array([[0] + [1, 0] * 7 + [0]], dtype=np.int64)
        for acc_bits in (12, 27, 48):
            assert_segmented_matches(sign, sig, lsb, acc_bits, mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_zero_runs_never_move_the_anchor(self, mode):
        # Zero slots between raises, leading zeros, and an all-zero row
        # (whose window must come back as the sentinel convention).
        sig = np.array(
            [
                [0, 0, 7, 0, 0, 0, 9, 0, 11, 0],
                [0] * 10,
                [5, 0, 0, 0, 0, 0, 0, 0, 0, 13],
            ],
            dtype=np.int64,
        )
        lsb = np.array(
            [
                [50, 50, 0, -3, 99, -99, 12, 7, 24, 0],
                [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
                [-5, 88, 88, 88, 88, 88, 88, 88, 88, 30],
            ],
            dtype=np.int64,
        )
        sign = (sig % 3 == 2).astype(np.int64)
        assert_segmented_matches(sign, sig, lsb, 48, mode)
        _, got_w = segmented_windowed_sum(sign, sig, lsb, 48, mode)
        assert got_w[1] == _ANCHOR_SENTINEL - 47

    @pytest.mark.parametrize("mode", MODES)
    def test_sign_cancellation_to_window_lsb(self, mode):
        # Two large addends cancel to a single ULP at the window bottom;
        # the next raise must re-round that residue, not the full values.
        acc_bits = 48
        big = (1 << 40) + 1
        sig = np.array([[big, big - 2, 1 << 20, 3]], dtype=np.int64)
        lsb = np.array([[0, 0, 0, 60]], dtype=np.int64)
        sign = np.array([[0, 1, 1, 0]], dtype=np.int64)
        assert_segmented_matches(sign, sig, lsb, acc_bits, mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_midpoint_ties_at_anchor_raise(self, mode):
        # Partial sums sitting exactly on rounding midpoints when the
        # anchor raise shifts them — RNE and RTZ must both match.
        sig = np.array([[3, 1, 1], [1, 2, 1], [5, 3, 1]], dtype=np.int64)
        lsb = np.array([[0, 1, 10], [0, 1, 12], [1, 0, 9]], dtype=np.int64)
        sign = np.zeros_like(sig)
        assert_segmented_matches(sign, sig, lsb, 12, mode)

    def test_single_slot_and_scalar_row(self):
        sig = np.array([[42]], dtype=np.int64)
        lsb = np.array([[-7]], dtype=np.int64)
        assert_segmented_matches(
            np.array([[1]]), sig, lsb, 48, RoundingMode.NEAREST_EVEN
        )

    def test_empty_slot_axis(self):
        v, w = segmented_windowed_sum(
            np.zeros((2, 0)), np.zeros((2, 0)), np.zeros((2, 0)), 48,
            RoundingMode.NEAREST_EVEN,
        )
        assert v.shape == (2,) and np.all(v == 0)
        assert np.all(w == _ANCHOR_SENTINEL - 47)


class TestHypothesisSweeps:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(1, 5),
        slots=st.integers(1, 33),
        acc_bits=st.sampled_from([12, 27, 48]),
        mode=st.sampled_from(MODES),
        seed=st.integers(0, 2**32 - 1),
        zero_frac=st.floats(0.0, 0.9),
    )
    def test_random_trajectories(self, rows, slots, acc_bits, mode, seed, zero_frac):
        rng = np.random.default_rng(seed)
        sig = rng.integers(0, 1 << 24, size=(rows, slots))
        sig[rng.random((rows, slots)) < zero_frac] = 0
        lsb = rng.integers(-300, 300, size=(rows, slots))
        sign = rng.integers(0, 2, size=(rows, slots))
        assert_segmented_matches(sign, sig, lsb, acc_bits, mode)

    @settings(max_examples=60, deadline=None)
    @given(
        slots=st.integers(1, 33),
        acc_bits=st.sampled_from([12, 27, 48]),
        mode=st.sampled_from(MODES),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_random_f32_packed(self, slots, acc_bits, mode, seed):
        # The packed front refuses configurations whose segment totals
        # could exceed float64's exact-integer range.
        assume(slots * (1 << acc_bits) <= (1 << 53))
        rng = np.random.default_rng(seed)
        mag = rng.integers(0, 1 << 24, size=(4, slots))
        mag[rng.random((4, slots)) < 0.3] = 0
        sgn = rng.choice([-1.0, 1.0], size=(4, slots))
        signed = (mag * sgn).astype(np.float32)
        lsb = rng.integers(-1000, 1000, size=(4, slots))
        assert_f32_matches(signed, lsb, acc_bits, mode)

    @settings(max_examples=40, deadline=None)
    @given(
        slots=st.integers(1, 20),
        mode=st.sampled_from(MODES),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_clustered_exponents_force_block_boundary_raises(self, slots, mode, seed):
        # Exponents drawn from a tiny set so raises land on repeated
        # values (rescale == 0 runs) and exact block boundaries.
        rng = np.random.default_rng(seed)
        sig = rng.integers(0, 1 << 12, size=(6, slots))
        lsb = rng.choice([-24, 0, 0, 0, 24], size=(6, slots))
        sign = rng.integers(0, 2, size=(6, slots))
        assert_segmented_matches(sign, sig, lsb, 48, mode)

    def test_negative_zero_f32_is_a_zero_slot(self):
        signed = np.array([[-0.0, 3.0, -5.0, 0.0]], dtype=np.float32)
        lsb = np.array([[100, 0, 1, -100]], dtype=np.int64)
        for mode in MODES:
            assert_f32_matches(signed, lsb, 48, mode)


class TestChainedKernel:
    """chained_vector_fp32 == the per-chunk vector MMA chain."""

    @staticmethod
    def _per_chunk(a, b, c, k_chunk, acc_bits, mode):
        acc = np.broadcast_to(
            np.asarray(c, dtype=np.float64), (a.shape[0], b.shape[1])
        )
        for k0 in range(0, a.shape[1], k_chunk):
            acc = vector_mma_fp32(
                a[:, k0 : k0 + k_chunk],
                b[k0 : k0 + k_chunk, :],
                acc,
                acc_bits=acc_bits,
                rounding=mode,
            )
        return np.asarray(acc)

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 9),
        k=st.integers(1, 23),
        n=st.integers(1, 9),
        k_chunk=st.sampled_from([1, 3, 4, 7]),
        acc_bits=st.sampled_from([12, 27, 48]),
        mode=st.sampled_from(MODES),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_matches_per_chunk_chain(self, m, k, n, k_chunk, acc_bits, mode, seed):
        rng = np.random.default_rng(seed)
        a = quantize(rng.standard_normal((m, k)), FP32)
        b = quantize(rng.standard_normal((k, n)), FP32)
        c = quantize(rng.standard_normal((m, n)), FP32)
        want = self._per_chunk(a, b, c, k_chunk, acc_bits, mode)
        got = chained_vector_fp32(
            a, b, c, k_chunk=k_chunk, acc_bits=acc_bits, rounding=mode
        )
        assert biteq(got, want)

    @pytest.mark.parametrize("block,group", [(1, 1), (2, 3), (5, 2), (64, 8)])
    def test_block_group_knobs_never_change_bits(self, block, group):
        rng = np.random.default_rng(11)
        a = quantize(rng.standard_normal((7, 13)), FP32)
        b = quantize(rng.standard_normal((13, 6)), FP32)
        c = quantize(rng.standard_normal((7, 6)), FP32)
        want = chained_vector_fp32(a, b, c)
        got = chained_vector_fp32(a, b, c, block=block, group=group)
        assert biteq(got, want)

    def test_adversarial_magnitudes_and_zeros(self):
        # Subnormals, max-magnitude values, signed zeros and heavy
        # cancellation through the chunk seams. Mid-chain FP32 overflow
        # must also agree: either both paths produce the same bits or
        # both reject the non-finite intermediate.
        from repro.mxu.vectorized import NonFiniteOperandError

        specials = np.array(
            [1e-40, -1e-40, 2.0**-149, 3.4e38, -3.4e38, 0.0, -0.0, 1.0]
        )
        rng = np.random.default_rng(5)
        for _ in range(8):
            a = quantize(rng.choice(specials, size=(4, 12)), FP32)
            b = quantize(rng.choice(np.concatenate([specials, [1e-30, -1.0]]),
                                    size=(12, 4)), FP32)
            c = quantize(rng.choice(specials, size=(4, 4)), FP32)

            def outcome(fn):
                try:
                    return ("ok", fn().tobytes())
                except NonFiniteOperandError:
                    return ("nonfinite", None)

            want = outcome(
                lambda: self._per_chunk(a, b, c, 4, 48, RoundingMode.NEAREST_EVEN)
            )
            got = outcome(lambda: chained_vector_fp32(a, b, c))
            assert got == want

    def test_ragged_k_tail_and_empty_dims(self):
        rng = np.random.default_rng(9)
        a = quantize(rng.standard_normal((3, 10)), FP32)  # 10 = 2*4 + 2
        b = quantize(rng.standard_normal((10, 3)), FP32)
        want = self._per_chunk(a, b, 0.0, 4, 48, RoundingMode.NEAREST_EVEN)
        assert biteq(chained_vector_fp32(a, b, 0.0), want)
        empty = chained_vector_fp32(
            np.empty((3, 0)), np.empty((0, 3)), np.float64(2.5)
        )
        assert biteq(empty, np.full((3, 3), 2.5))
