"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; per-test isolation via a fixed seed."""
    return np.random.default_rng(0xC0FFEE)


def fp32_array(rng: np.random.Generator, shape, scale: float = 1.0) -> np.ndarray:
    """Random FP32-representable values (float64 storage)."""
    from repro.types import FP32, quantize

    return quantize(rng.normal(size=shape) * scale, FP32)


def fp32c_array(rng: np.random.Generator, shape, scale: float = 1.0) -> np.ndarray:
    from repro.types import FP32, quantize_complex

    return quantize_complex(
        (rng.normal(size=shape) + 1j * rng.normal(size=shape)) * scale, FP32
    )
