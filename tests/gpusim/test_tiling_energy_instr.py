"""Tiling/occupancy/DRAM model, energy model, and Figure 2 instruction mix."""

import pytest

from repro.gpusim import (
    APPROACHES,
    DESIGN_POWER,
    EnergyModel,
    KernelSpec,
    PipeWork,
    TileConfig,
    a100,
    dram_bytes_wave_model,
    estimate_energy,
    plan_grid,
    tile_instruction_breakdown,
)
from repro.gpusim.tiling import occupancy_ctas_per_sm


class TestTiling:
    def test_grid_counts(self):
        g = plan_grid(1024, 1024, 512, TileConfig(tb_m=128, tb_n=128, tb_k=32))
        assert g.ctas_m == 8 and g.ctas_n == 8 and g.n_ctas == 64
        assert g.mainloop_iters == 16

    def test_ragged_grid_rounds_up(self):
        g = plan_grid(129, 100, 33, TileConfig(tb_m=128, tb_n=128, tb_k=32))
        assert g.ctas_m == 2 and g.ctas_n == 1 and g.mainloop_iters == 2

    def test_invalid_problem(self):
        with pytest.raises(ValueError):
            plan_grid(0, 4, 4, TileConfig())

    def test_smem_footprint(self):
        t = TileConfig(tb_m=128, tb_n=128, tb_k=32, stages=3, element_bytes=4)
        assert t.smem_bytes == (128 * 32 + 32 * 128) * 4 * 3

    def test_occupancy_bounded(self):
        g = a100()
        occ = occupancy_ctas_per_sm(TileConfig(), g)
        assert 1 <= occ <= g.max_ctas_per_sm

    def test_smaller_tile_higher_occupancy(self):
        g = a100()
        big = occupancy_ctas_per_sm(TileConfig(tb_m=128, tb_n=128), g)
        small = occupancy_ctas_per_sm(TileConfig(tb_m=64, tb_n=64, warps=4), g)
        assert small >= big


class TestDramWaveModel:
    def test_at_least_compulsory(self):
        g = a100()
        grid = plan_grid(4096, 4096, 4096, TileConfig())
        traffic = dram_bytes_wave_model(grid, g, 4, 4)
        compulsory = (4096 * 4096 * 2 + 4096 * 4096) * 4
        assert traffic >= compulsory

    def test_less_than_naive_reload(self):
        g = a100()
        grid = plan_grid(8192, 8192, 8192, TileConfig())
        traffic = dram_bytes_wave_model(grid, g, 4, 4)
        naive = (
            8192 * 8192 * (8192 / 128) * 4 * 2 + 8192 * 8192 * 4
        )  # reload per tile row/col
        assert traffic < naive

    def test_monotone_in_k(self):
        g = a100()
        t1 = dram_bytes_wave_model(plan_grid(2048, 2048, 1024, TileConfig()), g, 4, 4)
        t2 = dram_bytes_wave_model(plan_grid(2048, 2048, 4096, TileConfig()), g, 4, 4)
        assert t2 > t1


class TestEnergy:
    def test_components_positive(self):
        g = a100()
        spec = KernelSpec(
            name="e",
            work=PipeWork(
                tc_macs=1e10,
                tc_mode="fp16",
                fma_lane_ops=1e8,
                warp_instructions=1e7,
                smem_bytes=1e8,
                dram_bytes=1e8,
            ),
            n_ctas=1024,
        )
        e = estimate_energy(spec, g)
        for field in ("mxu_j", "vector_j", "issue_j", "smem_j", "dram_j", "static_j"):
            assert getattr(e, field) > 0
        assert e.total_j == pytest.approx(
            e.mxu_j + e.vector_j + e.issue_j + e.smem_j + e.dram_j + e.static_j
        )

    def test_fp32_mxu_mac_energy_8x(self):
        m = EnergyModel()
        ratio = m.mxu_mac_energy_pj("fp32_mxu") / m.mxu_mac_energy_pj("fp16")
        assert ratio == pytest.approx(DESIGN_POWER["fp32_mxu"][0], rel=1e-9)

    def test_m3xu_fp32_mac_cheaper_than_fp32_mxu(self):
        m = EnergyModel()
        assert m.mxu_mac_energy_pj("m3xu_fp32") < m.mxu_mac_energy_pj("fp32_mxu")

    def test_nonpipelined_cheapest_m3xu(self):
        m = EnergyModel()
        assert m.mxu_mac_energy_pj("m3xu_fp32_np") < m.mxu_mac_energy_pj("m3xu_fp32")

    def test_unknown_mode(self):
        with pytest.raises(KeyError):
            EnergyModel().mxu_mac_energy_pj("unobtainium")


class TestInstructionMix:
    def test_all_approaches_defined(self):
        for ap in APPROACHES:
            assert tile_instruction_breakdown(ap).total > 0

    def test_hardware_needs_no_split_arith(self):
        assert tile_instruction_breakdown("m3xu").split_arith == 0
        assert tile_instruction_breakdown("fp32_mxu").split_arith == 0

    def test_software_needs_split_arith(self):
        assert tile_instruction_breakdown("3xtf32").split_arith > 0
        assert tile_instruction_breakdown("3xbf16").split_arith > 0

    def test_m3xu_fewest_instructions_of_mxu_approaches(self):
        m3xu = tile_instruction_breakdown("m3xu").total
        assert m3xu < tile_instruction_breakdown("3xtf32").total
        assert m3xu < tile_instruction_breakdown("3xbf16").total
        assert m3xu < tile_instruction_breakdown("simt").total

    def test_eehc_extra_loads_stores(self):
        # "fewer loads/stores" for hardware (Fig. 2).
        hw = tile_instruction_breakdown("m3xu")
        sw = tile_instruction_breakdown("3xbf16")
        assert sw.loads + sw.stores > hw.loads + hw.stores

    def test_unknown_approach(self):
        with pytest.raises(ValueError):
            tile_instruction_breakdown("magic")
