"""The cycle-approximate mainloop simulator vs the analytic model."""

import pytest

from repro.gpusim import (
    MainloopParams,
    a100_emulation,
    simulate_gemm_cta,
    simulate_mainloop,
)
from repro.kernels import SGEMM_KERNELS, GemmProblem


class TestPipelineDynamics:
    def test_single_stage_serialises(self):
        p = MainloopParams(ldg_cycles=100, sts_cycles=20, lds_cycles=30,
                           mma_cycles=100, stages=1, ldg_latency=0)
        res = simulate_mainloop(p, 50)
        # No overlap: every iteration pays fetch + mma.
        assert res.steady_cycles_per_iter == pytest.approx(250, rel=0.05)

    def test_deep_pipeline_reaches_max_of_paths(self):
        p = MainloopParams(ldg_cycles=100, sts_cycles=20, lds_cycles=30,
                           mma_cycles=100, stages=3, ldg_latency=0)
        res = simulate_mainloop(p, 200)
        # Steady state = max(memory path 150, mma path 100).
        assert res.steady_cycles_per_iter == pytest.approx(150, rel=0.05)

    def test_mma_bound_when_memory_cheap(self):
        p = MainloopParams(ldg_cycles=10, sts_cycles=5, lds_cycles=5,
                           mma_cycles=200, stages=2, ldg_latency=0)
        res = simulate_mainloop(p, 100)
        assert res.steady_cycles_per_iter == pytest.approx(200, rel=0.05)
        assert res.efficiency > 0.95

    def test_two_stages_suffice_for_double_buffering(self):
        kw = dict(ldg_cycles=80, sts_cycles=10, lds_cycles=10,
                  mma_cycles=120, ldg_latency=0)
        one = simulate_mainloop(MainloopParams(stages=1, **kw), 100)
        two = simulate_mainloop(MainloopParams(stages=2, **kw), 100)
        three = simulate_mainloop(MainloopParams(stages=3, **kw), 100)
        assert two.total_cycles < one.total_cycles
        assert three.total_cycles == pytest.approx(two.total_cycles, rel=0.02)

    def test_cold_latency_in_prologue_only(self):
        p = MainloopParams(ldg_cycles=10, sts_cycles=5, lds_cycles=5,
                           mma_cycles=50, stages=2, ldg_latency=400)
        res = simulate_mainloop(p, 100)
        assert res.prologue_cycles >= 400
        assert res.steady_cycles_per_iter < 60

    def test_validation(self):
        with pytest.raises(ValueError):
            MainloopParams(1, 1, 1, 1, stages=0)
        with pytest.raises(ValueError):
            simulate_mainloop(MainloopParams(1, 1, 1, 1), 0)


class TestCrossValidation:
    """The simulator independently reproduces the analytic model's times."""

    @pytest.mark.parametrize("size", [2048, 8192])
    def test_within_20pct_of_analytic(self, size):
        gpu = a100_emulation()
        _, sim_s = simulate_gemm_cta(size, size, size, gpu)
        analytic = SGEMM_KERNELS["M3XU_sgemm_pipelined"].time(
            GemmProblem(size, size, size), gpu
        )
        assert sim_s == pytest.approx(analytic, rel=0.20)

    def test_pipeline_ablation_on_gemm(self):
        gpu = a100_emulation()
        res1, t1 = simulate_gemm_cta(4096, 4096, 4096, gpu, stages=1)
        res3, t3 = simulate_gemm_cta(4096, 4096, 4096, gpu, stages=3)
        assert t1 > 1.3 * t3
        assert res3.efficiency > res1.efficiency
