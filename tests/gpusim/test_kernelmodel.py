"""Kernel timing model mechanics."""

import pytest

from repro.gpusim import (
    KernelSpec,
    PipeWork,
    TileConfig,
    a100,
    estimate_time,
    sequence_time,
)


def _spec(**kw) -> KernelSpec:
    defaults = dict(
        name="t",
        work=PipeWork(tc_macs=1e9, tc_mode="fp16"),
        tile=TileConfig(),
        n_ctas=4096,
    )
    defaults.update(kw)
    return KernelSpec(**defaults)


class TestLimiters:
    def test_tensor_bound(self):
        t = estimate_time(_spec(work=PipeWork(tc_macs=1e12, tc_mode="fp16")), a100())
        assert t.limiter == "tensor"

    def test_dram_bound(self):
        w = PipeWork(tc_macs=1e6, tc_mode="fp16", dram_bytes=10e9)
        t = estimate_time(_spec(work=w), a100())
        assert t.limiter == "dram"

    def test_vector_bound(self):
        w = PipeWork(fma_lane_ops=1e12)
        t = estimate_time(_spec(work=w), a100())
        assert t.limiter == "vector"

    def test_issue_counts(self):
        w = PipeWork(warp_instructions=1e11)
        t = estimate_time(_spec(work=w), a100())
        assert t.limiter == "issue"

    def test_smem(self):
        w = PipeWork(smem_bytes=1e13)
        t = estimate_time(_spec(work=w), a100())
        assert t.limiter == "smem"


class TestScaling:
    def test_time_linear_in_macs(self):
        g = a100()
        t1 = estimate_time(_spec(work=PipeWork(tc_macs=1e12, tc_mode="fp16")), g)
        t2 = estimate_time(_spec(work=PipeWork(tc_macs=2e12, tc_mode="fp16")), g)
        busy1 = t1.total_s - t1.launch_s
        busy2 = t2.total_s - t2.launch_s
        assert busy2 == pytest.approx(2 * busy1, rel=1e-6)

    def test_clock_scale_slows_compute(self):
        g = a100()
        w = PipeWork(tc_macs=1e12, tc_mode="fp16")
        fast = estimate_time(_spec(work=w, clock_scale=1.0), g)
        slow = estimate_time(_spec(work=w, clock_scale=1 / 1.21), g)
        assert slow.tensor_s == pytest.approx(fast.tensor_s * 1.21, rel=1e-6)

    def test_clock_scale_does_not_slow_dram(self):
        g = a100()
        w = PipeWork(dram_bytes=1e9)
        fast = estimate_time(_spec(work=w, clock_scale=1.0), g)
        slow = estimate_time(_spec(work=w, clock_scale=0.5), g)
        assert slow.dram_s == fast.dram_s

    def test_util_derates_tensor(self):
        g = a100()
        w = PipeWork(tc_macs=1e12, tc_mode="fp16")
        full = estimate_time(_spec(work=w, tc_util=1.0), g)
        half = estimate_time(_spec(work=w, tc_util=0.5), g)
        assert half.tensor_s == pytest.approx(2 * full.tensor_s)

    def test_mode_rates(self):
        g = a100()
        t16 = estimate_time(_spec(work=PipeWork(tc_macs=1e12, tc_mode="fp16")), g)
        t32 = estimate_time(_spec(work=PipeWork(tc_macs=1e12, tc_mode="m3xu_fp32")), g)
        tcx = estimate_time(_spec(work=PipeWork(tc_macs=1e12, tc_mode="m3xu_fp32c")), g)
        assert t32.tensor_s == pytest.approx(4 * t16.tensor_s)
        assert tcx.tensor_s == pytest.approx(16 * t16.tensor_s)

    def test_unknown_mode_raises(self):
        with pytest.raises(KeyError):
            estimate_time(_spec(work=PipeWork(tc_macs=1e9, tc_mode="int8")), a100())


class TestWaveQuantisation:
    def test_full_waves_no_penalty(self):
        g = a100()
        t = estimate_time(_spec(n_ctas=g.n_sms * 10), g)
        assert t.wave_factor == pytest.approx(1.0)

    def test_partial_wave_penalised(self):
        g = a100()
        t = estimate_time(_spec(n_ctas=g.n_sms // 2), g)
        assert t.wave_factor == pytest.approx(2.0)

    def test_just_over_one_wave(self):
        g = a100()
        t = estimate_time(_spec(n_ctas=g.n_sms + 1), g)
        assert 1.9 < t.wave_factor < 2.0


class TestSequence:
    def test_sum_of_launches(self):
        g = a100()
        s1 = _spec(work=PipeWork(tc_macs=1e10, tc_mode="fp16"))
        s2 = _spec(work=PipeWork(dram_bytes=1e9))
        total = sequence_time([s1, s2], g)
        assert total == pytest.approx(
            estimate_time(s1, g).total_s + estimate_time(s2, g).total_s
        )

    def test_empty_sequence(self):
        assert sequence_time([], a100()) == 0.0
