"""GPU spec arithmetic: Table I, Section II-B, Section III-C."""

import pytest

from repro.gpusim import a100, a100_emulation, h100, mi100, required_feed_bandwidth
from repro.mxu import MXUMode


class TestTable1:
    """Table I must reproduce to within rounding of the datasheet."""

    def test_fp32_simt(self):
        assert a100().peak_tflops("fp32") == pytest.approx(19.5, rel=0.01)

    def test_fp16_vector(self):
        assert a100().peak_tflops("fp16") == pytest.approx(78.0, rel=0.01)

    def test_bf16_vector(self):
        assert a100().peak_tflops("bf16") == pytest.approx(39.0, rel=0.01)

    def test_tf32_tensor(self):
        assert a100().peak_tflops("tf32_tc") == pytest.approx(156.0, rel=0.01)

    def test_fp16_tensor(self):
        assert a100().peak_tflops("fp16_tc") == pytest.approx(312.0, rel=0.01)

    def test_bf16_tensor(self):
        assert a100().peak_tflops("bf16_tc") == pytest.approx(312.0, rel=0.01)

    def test_unknown_path_raises(self):
        with pytest.raises(KeyError):
            a100().peak_tflops("int4")


class TestSection3C:
    """Performance expectations on modern hardware."""

    def test_m3xu_fp32_is_78_tflops_on_ampere(self):
        # "equivalent to 78 TFLOPS on the Ampere architecture"
        assert a100().peak_tflops("m3xu_fp32") == pytest.approx(78.0, rel=0.01)

    def test_m3xu_4x_over_cuda_cores(self):
        g = a100()
        assert g.peak_tflops("m3xu_fp32") / g.peak_tflops("fp32") == pytest.approx(4.0)

    def test_m3xu_fp32c_4x_over_cuda_cores(self):
        g = a100()
        assert g.peak_tflops("m3xu_fp32c") / g.peak_tflops("fp32") == pytest.approx(4.0)

    def test_hopper_projection(self):
        # "or 248 TFLOPS on the Hopper architecture"
        assert h100().peak_tflops("m3xu_fp32") == pytest.approx(248.0, rel=0.03)

    def test_mi100_2x_projection(self):
        # "M3XU would have a 2x advantage over SIMT cores on those GPUs"
        g = mi100()
        assert g.peak_tflops("m3xu_fp32") / g.peak_tflops("fp32") == pytest.approx(2.0)

    def test_fp16_tc_15x_to_16x_over_fp32(self):
        # "the peak FP16 FLOPS on Tensor Cores ... are 15x-16x higher than
        # that of the FP32 CUDA/SIMT cores".
        g = a100()
        ratio = g.peak_tflops("fp16_tc") / g.peak_tflops("fp32")
        assert 15.0 <= ratio <= 16.5


class TestFeedBandwidth:
    def test_156_tb_per_sec(self):
        # Section II-B: B = 156 TB/s at 16-bit for 432 TCs @ 1.41 GHz.
        b = required_feed_bandwidth(a100(), 8, 4, 8, 16)
        assert b == pytest.approx(156e12, rel=0.01)

    def test_doubles_with_bitwidth(self):
        g = a100()
        b16 = required_feed_bandwidth(g, 8, 4, 8, 16)
        b32 = required_feed_bandwidth(g, 8, 4, 8, 32)
        assert b32 == pytest.approx(2 * b16)

    def test_vastly_exceeds_hbm(self):
        g = a100()
        assert required_feed_bandwidth(g, 8, 4, 8, 16) > 50 * g.dram_bw_gbs * 1e9


class TestClockControl:
    def test_emulation_clock(self):
        # Section V-C: Tensor-core frequency locked at 1170 MHz.
        assert a100_emulation().clock_ghz == pytest.approx(1.17)

    def test_with_clock_scales_peaks(self):
        g = a100()
        derated = g.with_clock(g.clock_ghz / 2)
        assert derated.peak_tflops("fp16_tc") == pytest.approx(
            g.peak_tflops("fp16_tc") / 2
        )

    def test_m3xu_mode_rates(self):
        g = a100()
        assert g.sm_m3xu_macs(MXUMode.FP32) == g.sm_fp16_tc_macs / 4
        assert g.sm_m3xu_macs(MXUMode.FP32C) == g.sm_fp16_tc_macs / 16
        assert g.sm_m3xu_macs(MXUMode.FP16) == g.sm_fp16_tc_macs
