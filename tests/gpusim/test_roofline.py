"""Roofline analysis helpers."""

import pytest

from repro.gpusim import (
    KernelSpec,
    PipeWork,
    RooflinePoint,
    a100,
    ascii_roofline,
    ridge_intensity,
    roofline_point,
)


class TestRooflineMath:
    def test_ridge_point_a100_fp16_tc(self):
        g = a100()
        # 312 TFLOPS / 1.555 TB/s ~ 200 FLOP/B.
        assert ridge_intensity(g, g.peak_tflops("fp16_tc")) == pytest.approx(200, rel=0.05)

    def test_memory_bound_detection(self):
        g = a100()
        p = RooflinePoint("x", flops=1e9, dram_bytes=1e9, peak_tflops=312.0)
        assert p.intensity == 1.0
        assert p.memory_bound(g)
        assert p.attainable_tflops(g) == pytest.approx(1.555, rel=0.01)

    def test_compute_bound_gemm(self):
        g = a100()
        # 8K^3 GEMM: ~2.2e12 flops over ~3 GB -> intensity ~360 FLOP/B.
        p = RooflinePoint("gemm", flops=2 * 8192.0**3, dram_bytes=3.2e9, peak_tflops=78.0)
        assert not p.memory_bound(g)
        assert p.attainable_tflops(g) == 78.0

    def test_from_kernel_spec(self):
        g = a100()
        spec = KernelSpec(
            name="k", work=PipeWork(tc_macs=1e9, dram_bytes=1e8), n_ctas=100
        )
        p = roofline_point(spec, g, flops=2e9, peak_path="m3xu_fp32")
        assert p.intensity == pytest.approx(20.0)
        assert p.name == "k"


class TestAsciiRoofline:
    def test_renders_points_and_roofs(self):
        g = a100()
        pts = [
            RooflinePoint("mem", flops=1e9, dram_bytes=1e9, peak_tflops=78.0),
            RooflinePoint("cmp", flops=1e13, dram_bytes=1e9, peak_tflops=78.0),
        ]
        art = ascii_roofline(pts, g)
        assert "0" in art and "1" in art
        assert "mem" in art and "cmp" in art
        assert "/" in art and "-" in art
