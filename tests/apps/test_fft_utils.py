"""Batched / 2-D / real-input FFT conveniences."""

import numpy as np
import pytest

from repro.apps.fft import batch_fft, fft2, ifft, ifft2, irfft, rfft


class TestFft2:
    def test_matches_numpy(self, rng):
        x = rng.normal(size=(2, 16, 32)) + 1j * rng.normal(size=(2, 16, 32))
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), rtol=1e-9, atol=1e-9)

    def test_roundtrip(self, rng):
        x = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        np.testing.assert_allclose(ifft2(fft2(x)), x, atol=1e-12)


class TestRfft:
    @pytest.mark.parametrize("n", [8, 64, 512])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), rtol=1e-8, atol=1e-9)

    def test_batched(self, rng):
        x = rng.normal(size=(4, 128))
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x, axis=-1), rtol=1e-8, atol=1e-9)

    def test_roundtrip(self, rng):
        x = rng.normal(size=256)
        np.testing.assert_allclose(irfft(rfft(x)), x, atol=1e-11)

    def test_half_the_cgemm_work(self, rng):
        # The packing trick runs an N/2 complex FFT: count CGEMM MACs.
        macs = {"n": 0}

        def counting(a, b):
            macs["n"] += a.shape[0] * a.shape[1] * b.shape[1]
            return a @ b

        x = rng.normal(size=1024)
        rfft(x, cgemm=counting)
        n_real = macs["n"]
        macs["n"] = 0
        batch_fft(x.astype(complex), cgemm=counting)
        n_complex = macs["n"]
        assert n_real < 0.7 * n_complex

    def test_rejects_odd_length(self, rng):
        with pytest.raises(ValueError):
            rfft(rng.normal(size=24))


class TestIfft:
    def test_roundtrip(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(ifft(batch_fft(x)), x, atol=1e-12)

    def test_on_m3xu(self, rng):
        from repro.gemm import mxu_cgemm

        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        got = ifft(np.fft.fft(x), cgemm=lambda a, b: mxu_cgemm(a, b))
        np.testing.assert_allclose(got, x, atol=1e-5)
