"""K-Means via GEMM distances (the second statistical-learning workload)."""

import numpy as np
import pytest

from repro.apps.knn import cluster_quality, kmeans


def _blobs(rng, k=3, per=40, dim=8, sep=8.0, scale=1.0):
    centers = rng.normal(size=(k, dim)) * sep
    pts = np.concatenate([centers[i] + rng.normal(size=(per, dim)) for i in range(k)])
    truth = np.repeat(np.arange(k), per)
    return pts * scale, truth


class TestKMeans:
    def test_recovers_well_separated_blobs(self, rng):
        x, truth = _blobs(rng)
        res = kmeans(x, 3, seed=1)
        assert res.converged
        assert cluster_quality(res.labels, truth) > 0.95

    def test_deterministic_per_seed(self, rng):
        x, _ = _blobs(rng)
        a = kmeans(x, 3, seed=5)
        b = kmeans(x, 3, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_inertia_reasonable(self, rng):
        x, _ = _blobs(rng)
        res3 = kmeans(x, 3, seed=1)
        res1 = kmeans(x, 1, seed=1)
        assert res3.inertia < res1.inertia

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), 6)

    def test_on_m3xu_matches_reference_assignment(self, rng):
        from repro.gemm import mxu_sgemm

        x, truth = _blobs(rng)
        ref = kmeans(x, 3, seed=2)
        m3 = kmeans(x, 3, seed=2, sgemm=lambda a, b: mxu_sgemm(a, b))
        # Same clustering decision-for-decision (ties aside).
        assert cluster_quality(m3.labels, ref.labels) > 0.99

    def test_fp16_degrades_on_small_magnitudes(self, rng):
        from repro.gemm import fp16_tensorcore_sgemm, mxu_sgemm

        x, truth = _blobs(rng, scale=1e-8, sep=4.0)
        m3 = kmeans(x, 3, seed=3, sgemm=lambda a, b: mxu_sgemm(a, b))
        f16 = kmeans(x, 3, seed=3, sgemm=lambda a, b: fp16_tensorcore_sgemm(a, b))
        q_m3 = cluster_quality(m3.labels, truth)
        q_16 = cluster_quality(f16.labels, truth)
        assert q_m3 > 0.9
        assert q_m3 >= q_16

    def test_quality_metric(self):
        assert cluster_quality(np.array([0, 0, 1, 1]), np.array([1, 1, 0, 0])) == 1.0
        with pytest.raises(ValueError):
            cluster_quality(np.array([0]), np.array([0, 1]))
