"""CG case study: FP32-sensitivity of scientific computing."""

import numpy as np
import pytest

from repro.apps.scientific import conjugate_gradient, diffusion_2d, poisson_1d
from repro.gemm import fp16_tensorcore_sgemm, mxu_sgemm


class TestMatrices:
    def test_poisson_spd(self):
        a = poisson_1d(16)
        np.testing.assert_array_equal(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_diffusion_size_and_spd(self):
        a = diffusion_2d(6)
        assert a.shape == (36, 36)
        assert np.all(np.linalg.eigvalsh(a) > 0)


class TestCg:
    def test_solves_float64(self, rng):
        a = poisson_1d(32)
        b = rng.normal(size=32)
        res = conjugate_gradient(a, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(a @ res.x, b, atol=1e-8)

    def test_exact_in_n_iterations(self, rng):
        # CG on an n x n SPD system converges within n iterations.
        a = poisson_1d(24)
        res = conjugate_gradient(a, rng.normal(size=24), tol=1e-12)
        assert res.iterations <= 24

    def test_true_residual_matches_recurrence_fp64(self, rng):
        a = diffusion_2d(8)
        res = conjugate_gradient(a, rng.normal(size=64), tol=1e-8)
        assert res.true_residual == pytest.approx(res.final_residual, rel=10.0)
        assert not res.silently_wrong

    def test_m3xu_matches_fp64_quality(self, rng):
        a = diffusion_2d(10) * 0.37
        b = rng.normal(size=100)
        res = conjugate_gradient(a, b, gemm=lambda m, v: mxu_sgemm(m, v), tol=1e-7, max_iter=1500)
        assert res.converged
        assert res.true_residual < 1e-5
        assert not res.silently_wrong

    def test_fp16_is_silently_wrong(self, rng):
        # The headline failure: FP16's recurrence claims 1e-7 convergence
        # while the actual residual stalls orders of magnitude higher.
        a = diffusion_2d(12) * 0.37
        b = rng.normal(size=144)
        res = conjugate_gradient(
            a, b, gemm=lambda m, v: fp16_tensorcore_sgemm(m, v), tol=1e-7, max_iter=2000
        )
        assert res.silently_wrong or not res.converged
        if res.converged:
            assert res.true_residual > 50 * res.final_residual

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            conjugate_gradient(np.ones((3, 4)), np.ones(3))
