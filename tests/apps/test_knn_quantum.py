"""kNN (Figure 9) and the quantum statevector extension."""

import numpy as np
import pytest

from repro.apps.knn import figure9, knn_search, knn_time, pairwise_sq_distances, recall_at_k
from repro.apps.quantum import Statevector, apply_gate


class TestKnnFunctional:
    def test_distances_match_bruteforce(self, rng):
        q = rng.normal(size=(10, 8))
        r = rng.normal(size=(20, 8))
        d = pairwise_sq_distances(q, r)
        brute = ((q[:, None, :] - r[None, :, :]) ** 2).sum(-1)
        np.testing.assert_allclose(d, brute, rtol=1e-10, atol=1e-10)

    def test_knn_matches_bruteforce(self, rng):
        q = rng.normal(size=(16, 12))
        r = rng.normal(size=(100, 12))
        idx, dist = knn_search(q, r, k=5)
        brute = ((q[:, None, :] - r[None, :, :]) ** 2).sum(-1)
        np.testing.assert_array_equal(idx, np.argsort(brute, axis=1)[:, :5])
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_self_query_finds_self(self, rng):
        pts = rng.normal(size=(30, 4))
        idx, dist = knn_search(pts, pts, k=1)
        np.testing.assert_array_equal(idx[:, 0], np.arange(30))
        np.testing.assert_allclose(dist, 0.0, atol=1e-12)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            pairwise_sq_distances(np.ones((2, 3)), np.ones((2, 4)))

    def test_bad_k(self, rng):
        with pytest.raises(ValueError):
            knn_search(np.ones((2, 3)), np.ones((4, 3)), k=5)

    def test_recall_metric(self):
        a = np.array([[0, 1], [2, 3]])
        b = np.array([[1, 0], [2, 9]])
        assert recall_at_k(a, b) == 0.75
        with pytest.raises(ValueError):
            recall_at_k(a, b[:1])

    def test_fp16_fails_small_magnitudes_m3xu_does_not(self, rng):
        # Section VI-C4: "the reduced precision will produce meaningless
        # computation results for input data with extremely small values".
        from repro.gemm import fp16_tensorcore_sgemm, mxu_sgemm

        q = rng.normal(size=(32, 16)) * 1e-8
        r = rng.normal(size=(128, 16)) * 1e-8
        truth, _ = knn_search(q, r, k=8)
        fp16_idx, _ = knn_search(q, r, k=8, sgemm=lambda a, b: fp16_tensorcore_sgemm(a, b))
        m3xu_idx, _ = knn_search(q, r, k=8, sgemm=lambda a, b: mxu_sgemm(a, b))
        assert recall_at_k(m3xu_idx, truth) == 1.0
        assert recall_at_k(fp16_idx, truth) < 0.5


class TestFigure9Perf:
    def test_tops_near_1p8(self):
        rows = figure9()
        assert max(r.speedup for r in rows) == pytest.approx(1.8, abs=0.1)

    def test_speedup_grows_with_dim(self):
        rows = figure9(point_counts=[16384], dims=[512, 1024, 2048, 4096])
        sp = [r.speedup for r in rows]
        assert sp == sorted(sp)

    def test_all_speedups_above_one(self):
        assert all(r.speedup > 1.0 for r in figure9())

    def test_m3xu_time_smaller(self):
        assert knn_time(8192, 1024, use_m3xu=True) < knn_time(8192, 1024, use_m3xu=False)


class TestQuantum:
    def test_bell_state(self):
        sv = Statevector(2).h(0).cnot(0, 1)
        probs = sv.probabilities()
        np.testing.assert_allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_ghz_norm_preserved(self):
        sv = Statevector(4).h(0)
        for q in range(1, 4):
            sv.cnot(0, q)
        assert sv.norm() == pytest.approx(1.0)
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_x_gate(self):
        sv = Statevector(1).x(0)
        np.testing.assert_allclose(sv.probabilities(), [0, 1], atol=1e-12)

    def test_hzh_equals_x(self):
        a = Statevector(1).h(0).z(0).h(0).state
        b = Statevector(1).x(0).state
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_gate_on_middle_qubit(self, rng):
        n = 3
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        got = apply_gate(state, Statevector.X, [1])
        # X on qubit 1 swaps amplitude pairs differing in bit 1.
        want = state.copy()
        for i in range(8):
            want[i] = state[i ^ 2]
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_m3xu_backed_circuit(self):
        from repro.gemm import mxu_cgemm

        sv = Statevector(3, cgemm=lambda a, b: mxu_cgemm(a, b))
        sv.h(0).cnot(0, 1).cnot(1, 2)
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5, abs=1e-6)
        assert probs[7] == pytest.approx(0.5, abs=1e-6)
        assert sv.norm() == pytest.approx(1.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Statevector(0)
        with pytest.raises(ValueError):
            apply_gate(np.ones(3, dtype=complex), Statevector.X, [0])
        with pytest.raises(ValueError):
            apply_gate(np.ones(4, dtype=complex), Statevector.X, [0, 1])
        with pytest.raises(ValueError):
            apply_gate(np.ones(4, dtype=complex), Statevector.X, [5])
