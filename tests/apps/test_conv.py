"""2-D convolution: im2col lowering, MXU execution, FFT-domain path."""

import numpy as np
import pytest

from repro.apps.conv import (
    ConvShape,
    conv2d_direct,
    conv2d_fft,
    conv2d_im2col,
    conv_speedups,
    conv_time,
    im2col,
)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_stride_and_padding(self, rng):
        x = rng.normal(size=(1, 2, 9, 9))
        cols = im2col(x, 3, 3, stride=2, padding=0)
        assert cols.shape == (4 * 4, 2 * 9)

    def test_identity_kernel_columns(self, rng):
        # 1x1 kernel, no padding: each row is just the pixel's channels.
        x = rng.normal(size=(1, 4, 5, 5))
        cols = im2col(x, 1, 1)
        np.testing.assert_array_equal(
            cols, x.transpose(0, 2, 3, 1).reshape(25, 4)
        )

    def test_rejects_bad_geometry(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 2, 2)), 5, 5)
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(3, 4, 5)), 3, 3)


class TestConv2d:
    def test_matches_direct(self, rng):
        x = rng.normal(size=(2, 3, 10, 12))
        w = rng.normal(size=(5, 3, 3, 3))
        got = conv2d_im2col(x, w, stride=1, padding=1)
        ref = conv2d_direct(x, w, stride=1, padding=1)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_strided(self, rng):
        x = rng.normal(size=(1, 2, 11, 11))
        w = rng.normal(size=(4, 2, 3, 3))
        got = conv2d_im2col(x, w, stride=2, padding=1)
        ref = conv2d_direct(x, w, stride=2, padding=1)
        assert got.shape == (1, 4, 6, 6)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_on_m3xu_sgemm(self, rng):
        from repro.gemm import mxu_sgemm

        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        got = conv2d_im2col(x, w, padding=1, sgemm=lambda a, b: mxu_sgemm(a, b))
        ref = conv2d_direct(x, w, padding=1)
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-5)

    def test_m3xu_beats_fp16_on_small_values(self, rng):
        from repro.gemm import fp16_tensorcore_sgemm, mxu_sgemm

        x = rng.normal(size=(1, 3, 6, 6)) * 1e-7
        w = rng.normal(size=(2, 3, 3, 3)) * 1e-7
        ref = conv2d_direct(x, w, padding=1)
        err_m3 = np.abs(
            conv2d_im2col(x, w, padding=1, sgemm=lambda a, b: mxu_sgemm(a, b)) - ref
        ).max()
        err_16 = np.abs(
            conv2d_im2col(
                x, w, padding=1, sgemm=lambda a, b: fp16_tensorcore_sgemm(a, b)
            )
            - ref
        ).max()
        assert err_m3 < err_16 / 10

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            conv2d_im2col(rng.normal(size=(1, 3, 4, 4)), rng.normal(size=(2, 4, 3, 3)))


class TestFftConv:
    def test_matches_scipy(self, rng):
        from scipy.signal import convolve2d

        x = rng.normal(size=(1, 2, 10, 10))
        w = rng.normal(size=(3, 2, 3, 3))
        got = conv2d_fft(x, w)
        for o in range(3):
            ref = sum(convolve2d(x[0, c], w[o, c], mode="same") for c in range(2))
            np.testing.assert_allclose(got[0, o], ref, rtol=1e-9, atol=1e-9)

    def test_rejects_even_kernel(self, rng):
        with pytest.raises(ValueError):
            conv2d_fft(rng.normal(size=(1, 1, 8, 8)), rng.normal(size=(1, 1, 2, 2)))


class TestConvPerf:
    def test_shape_arithmetic(self):
        s = ConvShape(32, 64, 56, 56, 64, 3, 3, padding=1)
        assert (s.oh, s.ow) == (56, 56)
        p = s.gemm()
        assert p.m == 32 * 56 * 56 and p.n == 64 and p.k == 576

    def test_m3xu_speedup_band(self):
        # Convolution speedups track the Figure 4 GEMM band.
        for s, sp in conv_speedups():
            assert 2.0 < sp < 4.6, s

    def test_simt_pays_im2col(self):
        s = ConvShape(32, 128, 28, 28, 128, 3, 3)
        t_simt = conv_time(s, "cutlass_simt_sgemm")
        t_m3xu = conv_time(s, "M3XU_sgemm_pipelined")
        assert t_simt > t_m3xu
