"""MRF: EPG physics, dictionary matching, Figure 8 perf."""

import numpy as np
import pytest

from repro.apps.mrf import (
    AtomGrid,
    EpgSimulator,
    FispSequence,
    dictgen_time,
    figure8,
    generate_dictionary,
    match_fingerprints,
    rf_rotation_matrix,
)


class TestEpgPhysics:
    def test_rf_matrix_preserves_magnetisation(self):
        # The RF mixing matrix acts unitarily on (F+, F-, Z) magnitude
        # invariants: zero flip = identity.
        np.testing.assert_allclose(rf_rotation_matrix(0.0), np.eye(3), atol=1e-12)

    def test_180_pulse_inverts_z(self):
        rot = rf_rotation_matrix(np.pi)
        z = np.array([0.0, 0.0, 1.0])
        out = rot @ z
        assert out[2].real == pytest.approx(-1.0, abs=1e-12)

    def test_90_pulse_tips_into_transverse(self):
        rot = rf_rotation_matrix(np.pi / 2)
        out = rot @ np.array([0.0, 0.0, 1.0])
        assert abs(out[2]) == pytest.approx(0.0, abs=1e-12)
        assert abs(out[0]) == pytest.approx(1.0, abs=1e-12)

    def test_zero_flip_train_gives_zero_signal(self):
        sim = EpgSimulator()
        seq = FispSequence(flip_deg=np.zeros(50))
        sig = sim.simulate(np.array([1000.0]), np.array([100.0]), seq)
        np.testing.assert_allclose(np.abs(sig), 0.0, atol=1e-14)

    def test_signal_bounded_by_equilibrium(self):
        sim = EpgSimulator()
        seq = FispSequence.standard(200)
        sig = sim.simulate(np.array([800.0]), np.array([80.0]), seq)
        assert np.all(np.abs(sig) <= 1.0 + 1e-9)

    def test_longer_t2_stronger_late_signal(self):
        sim = EpgSimulator()
        seq = FispSequence.standard(300)
        sig = sim.simulate(np.array([1000.0, 1000.0]), np.array([40.0, 200.0]), seq)
        late = slice(150, 300)
        assert np.mean(np.abs(sig[1, late])) > np.mean(np.abs(sig[0, late]))

    def test_distinct_params_distinct_signals(self):
        sim = EpgSimulator()
        seq = FispSequence.standard(150)
        sig = sim.simulate(np.array([500.0, 2000.0]), np.array([50.0, 50.0]), seq)
        n0 = sig[0] / np.linalg.norm(sig[0])
        n1 = sig[1] / np.linalg.norm(sig[1])
        assert abs(np.vdot(n0, n1)) < 0.999

    def test_input_validation(self):
        sim = EpgSimulator()
        seq = FispSequence.standard(10)
        with pytest.raises(ValueError):
            sim.simulate(np.array([100.0]), np.array([-5.0]), seq)
        with pytest.raises(ValueError):
            sim.simulate(np.array([[100.0]]), np.array([[50.0]]), seq)
        with pytest.raises(ValueError):
            EpgSimulator(n_states=1)


class TestDictionary:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return generate_dictionary(AtomGrid.standard(8, 8), FispSequence.standard(100))

    def test_grid_respects_t2_below_t1(self):
        g = AtomGrid.standard(10, 10)
        assert np.all(g.t2_ms < g.t1_ms)

    def test_rows_normalised(self, dictionary):
        norms = np.linalg.norm(dictionary.signals, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)

    def test_match_recovers_atoms(self, dictionary, rng):
        idx = rng.integers(0, dictionary.n_atoms, size=16)
        voxels = dictionary.signals[idx] * 2.5  # arbitrary proton density
        t1, t2, score = match_fingerprints(dictionary, voxels)
        np.testing.assert_array_equal(t1, dictionary.grid.t1_ms[idx])
        np.testing.assert_array_equal(t2, dictionary.grid.t2_ms[idx])
        np.testing.assert_allclose(score, 1.0, atol=1e-9)

    def test_match_robust_to_noise(self, dictionary, rng):
        idx = rng.integers(0, dictionary.n_atoms, size=16)
        sig = dictionary.signals[idx]
        noise = 0.02 * (rng.normal(size=sig.shape) + 1j * rng.normal(size=sig.shape))
        t1, _, _ = match_fingerprints(dictionary, sig + noise)
        # Most matches land on the right atom or a neighbour in T1.
        rel = np.abs(t1 - dictionary.grid.t1_ms[idx]) / dictionary.grid.t1_ms[idx]
        assert np.median(rel) < 0.35

    def test_match_through_m3xu_cgemm(self, dictionary, rng):
        from repro.gemm import mxu_cgemm

        idx = rng.integers(0, dictionary.n_atoms, size=8)
        voxels = dictionary.signals[idx]
        t1_ref, _, _ = match_fingerprints(dictionary, voxels)
        t1_m3, _, _ = match_fingerprints(
            dictionary, voxels, cgemm=lambda a, b: mxu_cgemm(a, b)
        )
        np.testing.assert_array_equal(t1_m3, t1_ref)


class TestFigure8Perf:
    def test_speedup_band(self):
        rows = figure8()
        sp = [r.speedup for r in rows]
        assert 1.15 < max(sp) < 1.30  # paper: "up to 1.26x"
        assert all(s >= 1.0 for s in sp)

    def test_speedup_grows_with_dictionary(self):
        rows = figure8()
        assert rows[-1].speedup > rows[0].speedup

    def test_cgemm_fraction_near_paper(self):
        rows = figure8()
        # "CGEMM accounts for 22% of the runtime" at production scales.
        assert rows[-1].cgemm_fraction == pytest.approx(0.22, abs=0.06)

    def test_dictgen_time_positive(self):
        t, frac = dictgen_time(1000)
        assert t > 0 and 0 < frac < 1
