"""DNN layer tables and the Figure 7 latency model."""

import pytest

from repro.apps.dnn import (
    NETWORKS,
    ConvLayer,
    FcLayer,
    alexnet,
    figure7,
    resnet50,
    training_latency,
    vgg16,
)
from repro.apps.dnn.training import PAPER_BWD_FRACTION


class TestLayerShapes:
    def test_conv_output_size(self):
        # AlexNet conv1: 224 -> 55 with k=11, s=4, p=2.
        c = ConvLayer("c1", 3, 64, 11, 224, stride=4, padding=2)
        assert c.out_hw == 55

    def test_same_padding_conv(self):
        c = ConvLayer("c", 64, 64, 3, 56, padding=1)
        assert c.out_hw == 56

    def test_conv_gemm_shape(self):
        c = ConvLayer("c", 64, 128, 3, 28, padding=1)
        p = c.gemm(batch=32)
        assert p.m == 32 * 28 * 28
        assert p.n == 128
        assert p.k == 64 * 9

    def test_fc_gemm_shape(self):
        f = FcLayer("fc", 4096, 1000)
        p = f.gemm(batch=64)
        assert (p.m, p.n, p.k) == (64, 1000, 4096)

    def test_activation_bytes_positive(self):
        assert ConvLayer("c", 3, 64, 3, 32, padding=1).activation_bytes(8) > 0
        assert FcLayer("f", 128, 10).activation_bytes(8) > 0


class TestNetworks:
    def test_alexnet_structure(self):
        layers = alexnet()
        assert len(layers) == 8  # 5 conv + 3 fc
        assert sum(isinstance(l, FcLayer) for l in layers) == 3

    def test_vgg16_structure(self):
        layers = vgg16()
        assert len(layers) == 16
        assert sum(isinstance(l, ConvLayer) for l in layers) == 13

    def test_resnet50_conv_count(self):
        layers = resnet50()
        convs = [l for l in layers if isinstance(l, ConvLayer)]
        # 1 stem + 3*3+4*3+6*3+3*3 bottleneck convs + 4 downsamples = 53.
        assert len(convs) == 53

    def test_resnet50_flops_ballpark(self):
        # ~4.1 GMACs per image (the commonly quoted "4 GFLOPs" counts a
        # multiply-add once); im2col GEMMs only, fc included.
        layers = resnet50()
        macs = sum(l.gemm(1).macs for l in layers)
        assert 3.0e9 < macs < 5.5e9

    def test_vgg16_flops_ballpark(self):
        # ~15.5 GMACs per image (the commonly quoted "15.5 GFLOPs" counts
        # a multiply-add once); our flops count both ops.
        macs = sum(l.gemm(1).macs for l in vgg16())
        assert 13e9 < macs < 18e9

    def test_networks_registry(self):
        assert set(NETWORKS) == {"AlexNet", "VGG16", "ResNet50"}


class TestFigure7:
    @pytest.fixture(scope="class")
    def data(self):
        return figure7(batch=32)

    def test_backward_fractions_match_paper(self, data):
        for net, frac in PAPER_BWD_FRACTION.items():
            got = data[net]["mixed_precision"].backward_fraction
            assert got == pytest.approx(frac, abs=0.02), net

    def test_m3xu_faster_everywhere(self, data):
        for net, d in data.items():
            assert d["m3xu"].total_s < d["mixed_precision"].total_s

    def test_only_backward_changes(self, data):
        for net, d in data.items():
            base, ours = d["mixed_precision"], d["m3xu"]
            assert ours.forward_s == pytest.approx(base.forward_s)
            assert ours.other_s == pytest.approx(base.other_s)
            assert ours.backward_s < base.backward_s

    def test_backward_speedup_band(self, data):
        # Paper reports 3.6x on its Nebula variants; our full-size layer
        # tables include memory-bound convs that cap the aggregate lower
        # (see EXPERIMENTS.md), but it must be well above 1.5x.
        for net, d in data.items():
            sp = d["mixed_precision"].backward_s / d["m3xu"].backward_s
            assert 1.5 < sp < 4.0, net

    def test_alexnet_highest_bwd_fraction(self, data):
        fr = {n: d["mixed_precision"].backward_fraction for n, d in data.items()}
        assert fr["AlexNet"] > fr["VGG16"]
        assert fr["AlexNet"] > fr["ResNet50"]

    def test_custom_backward_kernel(self):
        lat = training_latency("AlexNet", "cutlass_tensorop_sgemm", batch=16)
        assert lat.total_s > 0


class TestLayerHelpers:
    def test_layer_gemms_one_per_layer(self):
        from repro.apps.dnn import layer_gemms, vgg16

        layers = vgg16()
        gemms = layer_gemms(layers, batch=8)
        assert len(gemms) == len(layers)
        assert all(p.macs > 0 for p in gemms)

    def test_total_macs_scales_with_batch(self):
        from repro.apps.dnn.layers import total_macs
        from repro.apps.dnn import alexnet

        layers = alexnet()
        assert total_macs(layers, 16) == pytest.approx(2 * total_macs(layers, 8))

    def test_round_up_pow2(self):
        from repro.apps.dnn.layers import round_up_pow2

        assert round_up_pow2(1) == 1
        assert round_up_pow2(3) == 4
        assert round_up_pow2(1024) == 1024
        assert round_up_pow2(1025) == 2048
