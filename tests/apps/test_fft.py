"""GEMM-FFT: functional correctness and the Figure 6 perf model."""

import numpy as np
import pytest

from repro.apps.fft import (
    cufft_time,
    dft_matrix,
    fft_speedups,
    gemm_fft,
    m3xu_fft_time,
    tcfft_time,
)
from repro.gpusim import a100_emulation


class TestDftMatrix:
    def test_unitary_scaled(self):
        f = dft_matrix(16)
        np.testing.assert_allclose(f @ f.conj().T, 16 * np.eye(16), atol=1e-10)

    def test_inverse_is_conjugate(self):
        np.testing.assert_allclose(
            dft_matrix(8, inverse=True), np.conj(dft_matrix(8)), atol=1e-15
        )

    def test_size_one(self):
        np.testing.assert_array_equal(dft_matrix(1), [[1.0 + 0j]])

    def test_invalid(self):
        with pytest.raises(ValueError):
            dft_matrix(0)


class TestGemmFft:
    @pytest.mark.parametrize("n", [2, 4, 16, 128, 512, 2048])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        got = gemm_fft(x)
        ref = np.fft.fft(x)
        assert np.max(np.abs(got - ref)) < 1e-10 * np.max(np.abs(ref)) * n

    def test_batched(self, rng):
        x = rng.normal(size=(3, 64)) + 1j * rng.normal(size=(3, 64))
        got = gemm_fft(x)
        np.testing.assert_allclose(got, np.fft.fft(x, axis=-1), rtol=1e-10, atol=1e-9)

    def test_inverse_roundtrip(self, rng):
        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        back = gemm_fft(gemm_fft(x), inverse=True) / 256
        np.testing.assert_allclose(back, x, atol=1e-11)

    def test_parseval(self, rng):
        x = rng.normal(size=1024) + 1j * rng.normal(size=1024)
        X = gemm_fft(x)
        assert np.sum(np.abs(X) ** 2) == pytest.approx(1024 * np.sum(np.abs(x) ** 2))

    def test_rejects_non_power_of_two(self, rng):
        with pytest.raises(ValueError):
            gemm_fft(np.ones(24, dtype=complex))

    def test_radix_independence(self, rng):
        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        a = gemm_fft(x, base_radix=8)
        b = gemm_fft(x, base_radix=32)
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-10)

    def test_on_m3xu_cgemm_fp32_accuracy(self, rng):
        # "M3XU can directly perform FFT calculations without
        # approximations": FP32-level accuracy end to end.
        from repro.gemm import mxu_cgemm

        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        got = gemm_fft(x, cgemm=lambda a, b: mxu_cgemm(a, b))
        ref = np.fft.fft(x)
        rel = np.max(np.abs(got - ref)) / np.max(np.abs(ref))
        assert rel < 1e-5

    def test_m3xu_fft_beats_fp16_fft(self, rng):
        # The tcFFT contrast: FP16 complex GEMMs lose far more accuracy.
        from repro.gemm import cgemm_via_4_real, fp16_tensorcore_sgemm, mxu_cgemm

        x = rng.normal(size=256) + 1j * rng.normal(size=256)
        ref = np.fft.fft(x)

        def fp16_cgemm(a, b):
            return cgemm_via_4_real(a, b, 0.0, lambda p, q, r: fp16_tensorcore_sgemm(p, q, r))

        err16 = np.max(np.abs(gemm_fft(x, cgemm=fp16_cgemm) - ref))
        err_m3 = np.max(np.abs(gemm_fft(x, cgemm=lambda a, b: mxu_cgemm(a, b)) - ref))
        assert err_m3 < err16 / 50


class TestFigure6Perf:
    def test_speedup_band(self):
        rows = fft_speedups()
        sp = [r.m3xu_speedup for r in rows]
        assert max(sp) == pytest.approx(1.99, abs=0.12)
        assert np.mean(sp) == pytest.approx(1.52, abs=0.15)

    def test_speedup_grows_with_size(self):
        rows = fft_speedups()
        assert rows[-1].m3xu_speedup > rows[0].m3xu_speedup

    def test_tcfft_no_improvement(self):
        # "tcFFT does not improve performance over cuFFT".
        rows = fft_speedups()
        tc = [r.tcfft_speedup for r in rows]
        assert np.mean(tc) < 1.15

    def test_times_positive_and_ordered(self):
        g = a100_emulation()
        n = 1 << 22
        assert 0 < m3xu_fft_time(n, g) < cufft_time(n, g)
        assert tcfft_time(n, g) > 0

    def test_small_sizes_launch_bound(self):
        g = a100_emulation()
        # At 1K points one pass + launch: speedup ~ 1.
        ratio = cufft_time(1 << 10, g) / m3xu_fft_time(1 << 10, g)
        assert 0.9 < ratio < 1.15
