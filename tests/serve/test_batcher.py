"""Coalescing semantics: grouping, flush triggers, bit-exactness."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.serve.batcher import Batcher, BatchKey, PendingJob

KEY_A = BatchKey(op="gemm", m=8, k=8, n=8, level=0, abft=False)
KEY_B = BatchKey(op="gemm", m=16, k=8, n=8, level=0, abft=False)


def _job(key: BatchKey, i: int) -> PendingJob:
    loop = asyncio.get_running_loop()
    return PendingJob(key, {"i": i}, loop.create_future(),
                      deadline=time.monotonic() + 10.0)


class TestBatcher:
    def test_full_bucket_flushes_immediately(self):
        async def main():
            flushed: list[tuple[BatchKey, int]] = []

            async def cb(key, jobs):
                flushed.append((key, len(jobs)))
                for job in jobs:
                    job.future.set_result(job.payload["i"])

            batcher = Batcher(cb, max_batch=3, max_wait=60.0)
            jobs = [_job(KEY_A, i) for i in range(3)]
            for job in jobs:
                batcher.submit(job)
            results = await asyncio.gather(*(j.future for j in jobs))
            assert results == [0, 1, 2]
            assert flushed == [(KEY_A, 3)]
            assert batcher.coalesced == 3

        asyncio.run(main())

    def test_wait_window_flushes_partial_bucket(self):
        async def main():
            flushed = []

            async def cb(key, jobs):
                flushed.append(len(jobs))
                for job in jobs:
                    job.future.set_result(None)

            batcher = Batcher(cb, max_batch=8, max_wait=0.01)
            job = _job(KEY_A, 0)
            batcher.submit(job)
            await asyncio.wait_for(job.future, timeout=2.0)
            assert flushed == [1]

        asyncio.run(main())

    def test_incompatible_keys_never_share_a_batch(self):
        async def main():
            seen: list[BatchKey] = []

            async def cb(key, jobs):
                seen.append(key)
                assert all(job.key == key for job in jobs)
                for job in jobs:
                    job.future.set_result(None)

            batcher = Batcher(cb, max_batch=2, max_wait=60.0)
            jobs = [_job(KEY_A, 0), _job(KEY_B, 1), _job(KEY_A, 2), _job(KEY_B, 3)]
            for job in jobs:
                batcher.submit(job)
            await asyncio.gather(*(j.future for j in jobs))
            assert sorted(seen, key=str) == sorted([KEY_A, KEY_B], key=str)

        asyncio.run(main())

    def test_flush_callback_failure_fails_every_job(self):
        async def main():
            async def cb(key, jobs):
                raise RuntimeError("flush exploded")

            batcher = Batcher(cb, max_batch=2, max_wait=60.0)
            jobs = [_job(KEY_A, 0), _job(KEY_A, 1)]
            for job in jobs:
                batcher.submit(job)
            for job in jobs:
                with pytest.raises(RuntimeError, match="flush exploded"):
                    await asyncio.wait_for(job.future, timeout=2.0)

        asyncio.run(main())

    def test_drain_flushes_everything(self):
        async def main():
            async def cb(key, jobs):
                for job in jobs:
                    job.future.set_result(job.payload["i"])

            batcher = Batcher(cb, max_batch=100, max_wait=60.0)
            jobs = [_job(KEY_A, i) for i in range(4)]
            for job in jobs:
                batcher.submit(job)
            assert batcher.pending() == 4
            await batcher.drain()
            assert batcher.pending() == 0
            assert [j.future.result() for j in jobs] == [0, 1, 2, 3]

        asyncio.run(main())

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            Batcher(lambda *a: None, max_batch=0)


class TestCoalescedBitExactness:
    def test_batched_gemm_matches_single_requests_bitwise(self, rng):
        """Coalescing is a scheduling transform: a request served inside
        a batch must return exactly the bytes it would have alone."""
        from repro.gemm.batched import batched_mxu_sgemm
        from repro.gemm.tiled import mxu_sgemm

        a = rng.standard_normal((3, 8, 8))
        b = rng.standard_normal((3, 8, 8))
        batch = batched_mxu_sgemm(a, b, workers=1)
        for i in range(3):
            single = mxu_sgemm(a[i], b[i])
            np.testing.assert_array_equal(batch[i], single)
