"""Request records, percentiles and the run_table.csv artifact."""

from __future__ import annotations

import csv

from repro.serve.records import (
    RUN_TABLE_COLUMNS,
    RequestRecord,
    RunTable,
    percentile,
)


class TestPercentile:
    def test_empty_and_singleton(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([7.0], 50.0) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_p95_of_uniform_ramp(self):
        values = [float(i) for i in range(1, 101)]
        assert abs(percentile(values, 95.0) - 95.05) < 1e-9

    def test_order_invariant(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == percentile(
            [1.0, 2.0, 3.0], 50.0
        )


class TestRunTable:
    def _record(self, i: int, outcome: str = "OK", **kw) -> RequestRecord:
        return RequestRecord(
            request_id=f"r{i}", op="gemm", m=8, n=8, k=8,
            outcome=outcome, latency_ms=float(i), **kw,
        )

    def test_row_matches_column_order(self):
        row = self._record(1).to_row()
        assert list(row) == RUN_TABLE_COLUMNS

    def test_one_csv_row_per_request(self, tmp_path):
        table = RunTable()
        for i in range(5):
            table.add(self._record(i))
        table.add(self._record(5, outcome="REJECTED", reason="overload"))
        path = tmp_path / "run_table.csv"
        assert table.write_csv(path) == 6
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 6
        assert rows[0]["op"] == "gemm"
        assert rows[5]["outcome"] == "REJECTED"
        assert rows[5]["reason"] == "overload"

    def test_summary_separates_sheds_from_failures(self):
        table = RunTable()
        for i in range(6):
            table.add(self._record(i))
        for i in range(3):
            table.add(self._record(10 + i, outcome="REJECTED", reason="overload"))
        table.add(self._record(20, outcome="ERROR", reason="deadline"))
        summary = table.summary()
        assert summary["request_count"] == 10
        assert summary["served"] == 6
        assert summary["rejected"] == 3
        assert summary["errored"] == 1
        assert summary["shed_rate"] == 0.3
        assert summary["failure_rate"] == 0.1

    def test_summary_latency_covers_only_served(self):
        table = RunTable()
        table.add(self._record(2))
        table.add(self._record(4))
        bad = self._record(9, outcome="ERROR")
        bad.latency_ms = 1e6
        table.add(bad)
        summary = table.summary()
        assert summary["p50_latency_ms"] == 3.0
        assert summary["avg_latency_ms"] == 3.0

    def test_degraded_and_batched_counts(self):
        table = RunTable()
        table.add(self._record(1, degraded=True, degrade_level=3))
        table.add(self._record(2, batched=True))
        table.add(self._record(3, cached=True))
        summary = table.summary()
        assert summary["degraded_rate"] == 1 / 3
        assert summary["batched"] == 1
        assert summary["cached"] == 1
