"""Load-generator tests: fault campaign with zero undetected SDCs,
overload ramps shedding structurally, and report shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import LoadgenConfig, run_loadgen
from repro.serve.client import _check_sdc, _make_request, _sdc_tolerance
from repro.serve.server import decode_array, encode_array


class TestRequestGeneration:
    def test_deterministic_given_seed(self):
        cfg = LoadgenConfig(seed=3, size=8, fault_rate=0.5)
        a = [_make_request(np.random.default_rng(3), cfg, i)[0] for i in range(6)]
        b = [_make_request(np.random.default_rng(3), cfg, i)[0] for i in range(6)]
        assert a == b

    def test_fft_requests_use_power_of_two_lengths(self):
        cfg = LoadgenConfig(seed=0, size=12, mix=(0.0, 0.0, 1.0, 0.0))
        rng = np.random.default_rng(0)
        request, ref = _make_request(rng, cfg, 0)
        n = len(ref)
        assert n >= 12 and (n & (n - 1)) == 0

    def test_validates_config(self):
        with pytest.raises(ValueError):
            LoadgenConfig(mode="sideways")
        with pytest.raises(ValueError):
            LoadgenConfig(concurrency=0)


class TestSdcDetector:
    def test_accepts_roundoff_rejects_corruption(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        ref = a.astype(np.float32).astype(np.float64) @ (
            b.astype(np.float32).astype(np.float64)
        )
        request = {"op": "gemm"}
        clean = {"status": "OK", "result": encode_array(ref)}
        assert not _check_sdc(request, clean, ref)
        corrupt_val = ref.copy()
        corrupt_val[3, 3] += 1.0  # far beyond any roundoff
        corrupt = {"status": "OK", "result": encode_array(corrupt_val)}
        assert _check_sdc(request, corrupt, ref)

    def test_missing_or_misshapen_result_counts_as_corrupt(self, rng):
        ref = rng.standard_normal((4, 4))
        assert _check_sdc({"op": "gemm"}, {"status": "OK"}, ref)
        wrong = {"status": "OK", "result": encode_array(ref[:2])}
        assert _check_sdc({"op": "gemm"}, wrong, ref)

    def test_tolerance_scales_with_k_and_magnitude(self):
        small = _sdc_tolerance("gemm", 8, np.ones((2, 2)))
        large = _sdc_tolerance("gemm", 64, np.full((2, 2), 100.0))
        assert large > small


class TestLoadgenRuns:
    def test_fault_campaign_completes_with_zero_undetected_sdc(self):
        """The acceptance-criteria run, scaled for CI: injected worker
        kills, stalls and poisoned tiles; every OK result checked against
        the float64 reference; zero undetected SDCs; bounded latency."""
        report = run_loadgen(LoadgenConfig(
            duration_s=3.0, mode="closed", concurrency=3, size=10,
            fault_rate=0.2, seed=7, deadline_ms=2000.0,
        ))
        assert report["sent"] > 0
        assert report["sdc_count"] == 0
        assert report["outcomes"].get("OK", 0) > 0
        # Faults surface as structured errors or recovered OKs, never
        # hangs: everything sent is accounted for and bounded.
        accounted = sum(report["outcomes"].values())
        assert accounted == report["sent"]
        assert report["p95_latency_ms"] < 60_000.0
        assert report["elapsed_s"] < 60.0

    def test_overload_ramp_sheds_structurally(self):
        """Open-loop rate far above capacity: the server must answer
        everything (reject or serve), with structured rejections and no
        unbounded queue growth."""
        report = run_loadgen(LoadgenConfig(
            duration_s=2.0, mode="open", rate=400.0, concurrency=4,
            size=12, seed=11, deadline_ms=1500.0,
        ))
        assert report["sent"] > 100
        rejected = report["outcomes"].get("REJECTED", 0)
        assert rejected > 0
        assert set(report["reasons"]) <= {
            "queue_full", "overload", "deadline", "worker_lost",
            "execution", "circuit_open",
        }
        assert report["sdc_count"] == 0
        # Bounded: rejections are fast and the run ends promptly.
        assert report["elapsed_s"] < 60.0
