"""Degradation ladder decisions and the pool circuit breaker."""

from __future__ import annotations

import pytest

from repro.serve.degrade import CircuitBreaker, DegradeLevel, DegradePolicy


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow_pool()
        assert breaker.info()["trips"] == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=2.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow_pool()
        clock.advance(2.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow_pool()  # the probe
        assert not breaker.allow_pool()  # everyone else stays off

    def test_probe_success_closes_and_counts_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow_pool()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_pool()
        assert breaker.info()["recoveries"] == 1

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow_pool()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(1.0)  # inside the fresh cooldown
        assert not breaker.allow_pool()
        clock.advance(1.0)
        assert breaker.allow_pool()

    def test_record_events_folds_external_counter_deltas(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record_events(2)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_events(1)
        assert breaker.state == CircuitBreaker.OPEN

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestDegradePolicy:
    def test_auto_ladder_by_pressure(self):
        policy = DegradePolicy()
        closed = CircuitBreaker.CLOSED
        assert policy.decide(0.0, closed) == DegradeLevel.NORMAL
        assert policy.decide(0.5, closed) == DegradeLevel.NO_REVERIFY
        assert policy.decide(0.75, closed) == DegradeLevel.SERIAL
        assert policy.decide(0.95, closed) == DegradeLevel.REFERENCE

    def test_open_breaker_forces_at_least_serial(self):
        policy = DegradePolicy()
        assert policy.decide(0.0, CircuitBreaker.OPEN) == DegradeLevel.SERIAL
        assert policy.decide(0.95, CircuitBreaker.OPEN) == DegradeLevel.REFERENCE

    def test_off_mode_never_degrades(self):
        policy = DegradePolicy(mode="off")
        assert policy.decide(1.0, CircuitBreaker.OPEN) == DegradeLevel.NORMAL

    def test_pinned_levels(self):
        for mode in ("0", "1", "2", "3"):
            policy = DegradePolicy(mode=mode)
            assert policy.decide(0.0, CircuitBreaker.CLOSED) == DegradeLevel(int(mode))

    def test_validates_mode_and_threshold_order(self):
        with pytest.raises(ValueError):
            DegradePolicy(mode="sometimes")
        with pytest.raises(ValueError):
            DegradePolicy(no_reverify_at=0.9, serial_at=0.5)
