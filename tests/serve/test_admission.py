"""Admission control: token bucket + queue-depth backpressure."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]

    def test_refills_by_elapsed_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        bucket.try_take(2.0)
        assert not bucket.try_take()
        clock.advance(0.15)  # 10/s * 0.15s = 1.5 tokens
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=5.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 5.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10.0, burst=0.5)


class TestAdmissionController:
    def test_queue_depth_backpressure(self):
        ctrl = AdmissionController(max_queue=2)
        assert ctrl.admit() is None
        assert ctrl.admit() is None
        assert ctrl.admit() == "queue_full"
        ctrl.release()
        assert ctrl.admit() is None
        assert ctrl.info()["rejected_queue"] == 1

    def test_rate_limit_sheds_with_overload(self):
        clock = FakeClock()
        ctrl = AdmissionController(rate=10.0, burst=1.0, max_queue=64, clock=clock)
        assert ctrl.admit() is None
        ctrl.release()
        assert ctrl.admit() == "overload"
        clock.advance(0.2)
        assert ctrl.admit() is None
        assert ctrl.info()["rejected_overload"] == 1

    def test_queue_check_precedes_rate_check(self):
        # A full queue must shed even when tokens are available, and must
        # not consume a token doing so.
        clock = FakeClock()
        ctrl = AdmissionController(rate=10.0, burst=5.0, max_queue=1, clock=clock)
        assert ctrl.admit() is None
        assert ctrl.admit() == "queue_full"
        assert ctrl.bucket is not None and ctrl.bucket.tokens == 4.0

    def test_pressure_is_queue_occupancy(self):
        ctrl = AdmissionController(max_queue=4)
        assert ctrl.pressure() == 0.0
        ctrl.admit()
        ctrl.admit()
        assert ctrl.pressure() == 0.5

    def test_exclusive_pressure_subtracts_own_slot(self):
        # A lone request on a max_queue=1 server must not see itself as
        # full pressure (it would pin every request to the worst rung).
        ctrl = AdmissionController(max_queue=1)
        ctrl.admit()
        assert ctrl.pressure() == 1.0
        assert ctrl.pressure(exclude_self=True) == 0.0

    def test_release_never_goes_negative(self):
        ctrl = AdmissionController(max_queue=4)
        ctrl.release()
        assert ctrl.in_flight == 0

    def test_no_bucket_when_rate_disabled(self):
        ctrl = AdmissionController(rate=None, max_queue=4)
        assert ctrl.bucket is None
        assert all(ctrl.admit() is None for _ in range(4))
