"""End-to-end serving tests: protocol, fidelity, faults, overload.

Each test hosts a real :class:`GemmServer` on an ephemeral port inside
``asyncio.run`` and talks to it over TCP — the same path production
clients use. Blocking-client scenarios run in an executor thread;
pipelined/overload scenarios use :class:`AsyncConnection` in-loop.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable

import numpy as np
import pytest

from repro.serve import GemmServer, ServeConfig, ServeClient
from repro.serve.client import AsyncConnection
from repro.serve.server import decode_array, encode_array


def with_server(cfg: ServeConfig, fn: Callable[[GemmServer], Any]) -> Any:
    """Host a server, run blocking *fn(server)* in a thread, stop it."""

    async def main() -> Any:
        server = GemmServer(cfg)
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, fn, server)
        finally:
            await server.stop()

    return asyncio.run(main())


def client_for(server: GemmServer, timeout: float = 60.0) -> ServeClient:
    return ServeClient("127.0.0.1", server.port, timeout=timeout)


class TestWireEncoding:
    def test_real_round_trip(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(decode_array(encode_array(x), 1 << 20), x)

    def test_complex_round_trip(self, rng):
        x = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
        np.testing.assert_array_equal(decode_array(encode_array(x), 1 << 20), x)

    def test_rejects_oversized_missing_and_nonfinite(self):
        with pytest.raises(ValueError):
            decode_array([[1.0] * 10] * 10, max_elements=50)
        with pytest.raises(ValueError):
            decode_array(None, max_elements=50)
        with pytest.raises(ValueError):
            decode_array([float("nan")], max_elements=50)
        with pytest.raises(ValueError):
            decode_array({"re": [1.0], "im": [1.0, 2.0]}, max_elements=50)
        with pytest.raises(ValueError):
            decode_array(["zebra"], max_elements=50)


class TestServingFidelity:
    def test_gemm_is_bit_exact_with_local_datapath(self, rng):
        from repro.gemm.tiled import mxu_sgemm

        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                response = client.gemm(a, b)
                assert response["status"] == "OK"
                assert response["degraded"] is False
                return client.result(response)

        served = with_server(ServeConfig(port=0), scenario)
        np.testing.assert_array_equal(served, mxu_sgemm(a, b))

    def test_cgemm_is_bit_exact_with_local_datapath(self, rng):
        from repro.gemm.tiled import mxu_cgemm

        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                return client.result(client.gemm(a, b))

        served = with_server(ServeConfig(port=0), scenario)
        np.testing.assert_array_equal(served, mxu_cgemm(a, b))

    def test_fft_and_mrf_ops(self, rng):
        x = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        dictionary = rng.standard_normal((5, 8)) + 1j * rng.standard_normal((5, 8))
        voxels = rng.standard_normal((2, 8)) + 1j * rng.standard_normal((2, 8))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                fft = client.result(client.fft(x))
                mrf = client.result(client.request({
                    "op": "mrf",
                    "a": encode_array(dictionary),
                    "b": encode_array(voxels),
                }))
                return fft, mrf

        fft, mrf = with_server(ServeConfig(port=0), scenario)
        np.testing.assert_allclose(fft, np.fft.fft(x), rtol=0, atol=1e-4)
        ref = np.abs(np.conj(dictionary) @ voxels.T)
        assert mrf.shape == (5, 2)
        np.testing.assert_allclose(mrf, ref, rtol=0, atol=1e-4)

    def test_repeat_payload_served_from_cache_bit_identically(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                first = client.gemm(a, b)
                second = client.gemm(a, b)
                assert first["cached"] is False
                assert second["cached"] is True
                np.testing.assert_array_equal(
                    client.result(first), client.result(second)
                )
                return server.cache.hits

        hits = with_server(ServeConfig(port=0), scenario)
        assert hits >= 1


class TestProtocolRobustness:
    def test_structured_errors_for_bad_requests(self):
        def scenario(server: GemmServer):
            with client_for(server) as client:
                cases = [
                    {"op": "nope"},
                    {"op": "gemm", "a": [[1.0, 2.0]], "b": [[1.0, 2.0]]},
                    {"op": "gemm", "a": [[1.0]]},
                    {"op": "fft", "x": {"re": [1.0, 2.0, 3.0],
                                        "im": [0.0, 0.0, 0.0]}},
                    {"op": "gemm", "a": [["x"]], "b": [[1.0]]},
                ]
                out = [client.request(case) for case in cases]
                assert all(r["status"] == "ERROR" for r in out)
                assert all(r["reason"] == "bad_request" for r in out)
                # The server survives garbage and still serves.
                assert client.ping()["status"] == "OK"

        with_server(ServeConfig(port=0), scenario)

    def test_unparseable_line_gets_structured_error(self):
        def scenario(server: GemmServer):
            import json
            import socket

            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as sock:
                sock.sendall(b"this is not json\n")
                response = json.loads(sock.makefile("rb").readline())
                assert response["status"] == "ERROR"
                assert response["reason"] == "bad_request"

        with_server(ServeConfig(port=0), scenario)

    def test_oversized_operand_is_shed_not_fatal(self):
        def scenario(server: GemmServer):
            with client_for(server) as client:
                big = [[1.0] * 40] * 40  # 1600 > max_elements=1000
                response = client.request({"op": "gemm", "a": big, "b": big})
                assert response["status"] == "ERROR"
                assert response["reason"] == "bad_request"
                assert client.ping()["status"] == "OK"

        with_server(ServeConfig(port=0, max_elements=1000), scenario)

    def test_shutdown_op_gated_by_config(self):
        def denied(server: GemmServer):
            with client_for(server) as client:
                response = client.shutdown()
                assert response["status"] == "ERROR"
                assert response["reason"] == "shutdown_not_allowed"
                assert client.ping()["status"] == "OK"

        with_server(ServeConfig(port=0), denied)

    def test_remote_shutdown_stops_the_server(self):
        async def main():
            server = GemmServer(ServeConfig(port=0, allow_shutdown=True))
            await server.start()
            loop = asyncio.get_running_loop()

            def scenario():
                with ServeClient("127.0.0.1", server.port) as client:
                    assert client.shutdown()["status"] == "OK"

            await loop.run_in_executor(None, scenario)
            await asyncio.wait_for(server.serve_forever(), timeout=10.0)

        asyncio.run(main())  # wait_for guards against a hung shutdown


class TestFaultInjection:
    def test_fault_directives_ignored_without_opt_in(self, rng):
        a = rng.standard_normal((4, 4))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                response = client.request({
                    "op": "gemm", "a": a.tolist(), "b": a.tolist(),
                    "fault": {"kind": "stall", "ms": 60000},
                    "deadline_ms": 5000,
                })
                assert response["status"] == "OK"

        t0 = time.monotonic()
        with_server(ServeConfig(port=0, fault_injection=False), scenario)
        assert time.monotonic() - t0 < 30.0

    def test_worker_kill_recovers_via_retry(self, rng):
        from repro.gemm.tiled import mxu_sgemm

        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                response = client.request({
                    "op": "gemm", "a": a.tolist(), "b": b.tolist(),
                    "fault": {"kind": "kill_worker"},
                    "deadline_ms": 30000,
                })
                assert response["status"] == "OK"
                return client.result(response)

        served = with_server(
            ServeConfig(port=0, fault_injection=True), scenario
        )
        np.testing.assert_array_equal(served, mxu_sgemm(a, b))

    def test_stalled_worker_is_killed_at_the_deadline(self, rng):
        a = rng.standard_normal((4, 4))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                t0 = time.monotonic()
                response = client.request({
                    "op": "gemm", "a": a.tolist(), "b": a.tolist(),
                    "fault": {"kind": "stall", "ms": 60000},
                    "deadline_ms": 500,
                })
                elapsed = time.monotonic() - t0
                assert response["status"] == "ERROR"
                assert response["reason"] == "deadline"
                assert elapsed < 20.0  # killed, not waited out
                # The next clean request still succeeds.
                ok = client.request({
                    "op": "gemm", "a": a.tolist(), "b": a.tolist(),
                    "deadline_ms": 30000,
                })
                assert ok["status"] == "OK"

        with_server(
            ServeConfig(port=0, fault_injection=True, retries=0,
                        breaker_threshold=5),
            scenario,
        )

    def test_poisoned_datapath_is_repaired_by_abft(self, rng):
        from repro.gemm.tiled import mxu_sgemm

        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                response = client.request({
                    "op": "gemm", "a": a.tolist(), "b": b.tolist(),
                    "fault": {"kind": "poison", "seed": 11},
                    "deadline_ms": 30000,
                })
                assert response["status"] == "OK"
                return client.result(response)

        served = with_server(
            ServeConfig(port=0, fault_injection=True, abft=True), scenario
        )
        # ABFT repaired the corrupted tiles: bit-identical to clean run.
        np.testing.assert_array_equal(served, mxu_sgemm(a, b))


class TestOverloadAndDegradation:
    def test_queue_full_sheds_with_structured_rejection(self, rng):
        a = rng.standard_normal((4, 4)).tolist()

        async def main():
            server = GemmServer(ServeConfig(
                port=0, fault_injection=True, max_queue=1, retries=0,
                breaker_threshold=100,
            ))
            await server.start()
            conn = await AsyncConnection.open("127.0.0.1", server.port)
            try:
                blocker = asyncio.get_running_loop().create_task(
                    conn.request({
                        "op": "gemm", "a": a, "b": a,
                        "fault": {"kind": "stall", "ms": 60000},
                        "deadline_ms": 1500,
                    })
                )
                await asyncio.sleep(0.3)  # let the stall occupy the queue
                shed = await conn.request(
                    {"op": "gemm", "a": a, "b": a, "deadline_ms": 1500}
                )
                assert shed["status"] == "REJECTED"
                assert shed["reason"] == "queue_full"
                blocked = await asyncio.wait_for(blocker, timeout=30.0)
                assert blocked["status"] == "ERROR"
                summary = server.run_table.summary()
                assert summary["rejected"] >= 1
            finally:
                await conn.close()
                await server.stop()

        asyncio.run(main())

    def test_token_bucket_sheds_overload(self, rng):
        a = rng.standard_normal((4, 4))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                first = client.gemm(a, a)
                second = client.gemm(a, a)
                assert first["status"] == "OK"
                assert second["status"] == "REJECTED"
                assert second["reason"] == "overload"

        with_server(ServeConfig(port=0, rate=0.001, burst=1.0), scenario)

    def test_pinned_reference_level_serves_tagged_results(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                response = client.gemm(a, b)
                assert response["status"] == "OK"
                assert response["degraded"] is True
                assert response["degrade_level"] == 3
                return client.result(response)

        served = with_server(ServeConfig(port=0, degrade="3"), scenario)
        ref = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(served, ref, rtol=0, atol=1e-5)

    def test_breaker_trips_and_recovers_via_half_open_probe(self, rng):
        a = rng.standard_normal((4, 4))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                stall = {
                    "op": "gemm", "a": a.tolist(), "b": a.tolist(),
                    "fault": {"kind": "stall", "ms": 60000},
                    "deadline_ms": 400,
                }
                assert client.request(dict(stall))["status"] == "ERROR"
                info = client.stats()["result"]["breaker"]
                assert info["state"] == "open"
                assert info["trips"] == 1
                # While open, requests still get answered (degraded path).
                during = client.gemm(a, a)
                assert during["status"] == "OK"
                assert during["degrade_level"] >= 2
                time.sleep(0.6)  # past the cooldown: half-open
                # Fresh operands: a cache hit would never probe the pool.
                fresh = rng.standard_normal((4, 4))
                after = client.gemm(fresh, fresh)
                assert after["status"] == "OK"
                info = client.stats()["result"]["breaker"]
                assert info["state"] == "closed"
                assert info["recoveries"] == 1

        with_server(
            ServeConfig(port=0, fault_injection=True, retries=0,
                        breaker_threshold=1, breaker_cooldown=0.5),
            scenario,
        )

    def test_every_request_leaves_a_run_table_row(self, rng):
        a = rng.standard_normal((4, 4))

        def scenario(server: GemmServer):
            with client_for(server) as client:
                client.gemm(a, a)
                client.request({"op": "nope"})
                client.gemm(a, a)
            return server.run_table

        table = with_server(ServeConfig(port=0), scenario)
        rows = table.rows()
        assert len(rows) == 3
        assert [r.outcome for r in rows] == ["OK", "ERROR", "OK"]
        assert rows[2].cached  # repeat payload
