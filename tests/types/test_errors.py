"""Error metric behaviour."""

import numpy as np

from repro.types import FP32, matching_bits, max_relative_error, relative_error, ulp_error


class TestUlpError:
    def test_one_ulp_at_unit(self):
        exact = np.array([1.0])
        approx = np.array([1.0 + 2.0**-23])
        assert ulp_error(approx, exact, FP32)[0] == 1.0

    def test_ulp_scales_with_exponent(self):
        exact = np.array([2.0**10])
        approx = exact + 2.0 ** (10 - 23)
        assert ulp_error(approx, exact, FP32)[0] == 1.0

    def test_exact_zero_reference(self):
        err = ulp_error(np.array([FP32.min_subnormal]), np.array([0.0]), FP32)
        assert err[0] == 1.0

    def test_zero_error(self, rng):
        x = rng.normal(size=64)
        np.testing.assert_array_equal(ulp_error(x, x, FP32), 0.0)


class TestRelativeError:
    def test_basic(self):
        got = relative_error(np.array([1.1]), np.array([1.0]))[0]
        assert abs(got - 0.1) < 1e-15

    def test_zero_reference_uses_absolute(self):
        assert relative_error(np.array([0.25]), np.array([0.0]))[0] == 0.25

    def test_max_ignores_nonfinite_refs(self):
        approx = np.array([1.0, 5.0])
        exact = np.array([1.0, np.inf])
        assert max_relative_error(approx, exact) == 0.0

    def test_all_nonfinite_returns_nan(self):
        assert np.isnan(max_relative_error(np.array([np.nan]), np.array([np.inf])))


class TestMatchingBits:
    def test_exact_is_53(self, rng):
        x = rng.normal(size=16)
        assert matching_bits(x, x) == 53.0

    def test_half_precision_loss_detected(self, rng):
        exact = np.abs(rng.normal(size=256)) + 1.0
        approx = exact * (1 + 2.0**-11)
        bits = matching_bits(approx, exact)
        assert 10.0 < bits < 12.0

    def test_more_error_fewer_bits(self, rng):
        exact = np.abs(rng.normal(size=64)) + 1.0
        a = exact * (1 + 2.0**-20)
        b = exact * (1 + 2.0**-10)
        assert matching_bits(a, exact) > matching_bits(b, exact)
