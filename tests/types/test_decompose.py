"""Operand decompositions — the Eq. 3-9 machinery."""

import numpy as np
import pytest

from repro.types import (
    BF16,
    FP32,
    TF32,
    deinterleave_complex,
    interleave_complex,
    quantize,
    split_complex,
    split_fp32_m3xu,
    split_n_parts,
    split_round_residual,
)


def _sig_bits(x: np.ndarray) -> int:
    """Max significand bits used by the non-zero finite values of x."""
    nz = x[np.isfinite(x) & (x != 0)]
    if nz.size == 0:
        return 0
    m, _ = np.frexp(np.abs(nz))
    for bits in range(1, 60):
        s = np.ldexp(m, bits)
        if np.all(s == np.rint(s)):
            return bits
    raise AssertionError("unbounded significand")


class TestM3xuSplit:
    def test_exact_reconstruction(self, rng):
        x = quantize(rng.normal(size=4096) * 10.0 ** rng.uniform(-30, 30, 4096), FP32)
        hi, lo = split_fp32_m3xu(x)
        np.testing.assert_array_equal(hi + lo, x)

    def test_parts_fit_12_bit_significand(self, rng):
        # Fig. 3(a): both parts must fit the 12-bit multiplier input.
        x = quantize(rng.normal(size=4096), FP32)
        hi, lo = split_fp32_m3xu(x)
        assert _sig_bits(hi) <= 12
        assert _sig_bits(lo) <= 12

    def test_hi_is_truncation(self, rng):
        # The high part is x with its low 12 mantissa bits zeroed, so
        # |hi| <= |x| and they share sign.
        x = quantize(rng.normal(size=1024), FP32)
        hi, lo = split_fp32_m3xu(x)
        assert np.all(np.abs(hi) <= np.abs(x))
        nz = x != 0
        assert np.all(np.sign(hi[nz]) == np.sign(x[nz]))

    def test_lo_magnitude_bounded(self, rng):
        # lo holds mantissa bits of weight 2^-12..2^-23 relative to the
        # operand's exponent.
        x = quantize(np.abs(rng.normal(size=1024)) + 0.5, FP32)
        _, e = np.frexp(np.abs(x))
        hi, lo = split_fp32_m3xu(x)
        bound = np.ldexp(1.0, e - 1 - 11)  # 2^(exp-11)
        assert np.all(np.abs(lo) < bound)

    def test_subnormal_inputs(self):
        subs = np.array([2.0**-130, 2.0**-126 - 2.0**-140, 2.0**-149])
        x = quantize(subs, FP32)
        hi, lo = split_fp32_m3xu(x)
        np.testing.assert_array_equal(hi + lo, x)

    def test_powers_of_two_have_zero_lo(self):
        x = np.array([1.0, 2.0, 0.5, -4.0, 2.0**100])
        hi, lo = split_fp32_m3xu(x)
        np.testing.assert_array_equal(hi, x)
        np.testing.assert_array_equal(lo, 0.0)

    def test_specials(self):
        x = np.array([np.inf, -np.inf, np.nan, 0.0])
        hi, lo = split_fp32_m3xu(x)
        assert hi[0] == np.inf and hi[1] == -np.inf and np.isnan(hi[2])
        assert lo[3] == 0.0 and hi[3] == 0.0
        np.testing.assert_array_equal(lo[:3], 0.0)


class TestRoundResidual:
    def test_two_term_tf32_halves_error(self, rng):
        x = quantize(rng.normal(size=2048), FP32)
        t0, t1 = split_round_residual(x, TF32, 2)
        # Both terms on the TF32 grid.
        np.testing.assert_array_equal(t0, quantize(t0, TF32))
        np.testing.assert_array_equal(t1, quantize(t1, TF32))
        # Two terms cover ~21 bits; residual <= 2^-21-ish relative.
        err = np.abs(x - t0 - t1)
        assert np.all(err <= np.abs(x) * 2.0**-20 + 1e-300)

    def test_residual_not_exact_in_general(self, rng):
        # The defining weakness of the software split (vs the M3XU split).
        x = quantize(rng.normal(size=2048), FP32)
        t0, t1 = split_round_residual(x, BF16, 2)
        assert np.any(t0 + t1 != x)

    def test_three_terms_tighter_than_two(self, rng):
        x = quantize(rng.normal(size=512), FP32)
        two = sum(split_round_residual(x, BF16, 2))
        three = sum(split_round_residual(x, BF16, 3))
        assert np.max(np.abs(x - three)) <= np.max(np.abs(x - two))

    def test_single_term_is_plain_quantize(self, rng):
        x = rng.normal(size=128)
        (t,) = split_round_residual(x, TF32, 1)
        np.testing.assert_array_equal(t, quantize(x, TF32))

    def test_invalid_terms(self):
        with pytest.raises(ValueError):
            split_round_residual(np.ones(3), TF32, 0)


class TestNParts:
    def test_fp64_two_part_covers_53_bits(self, rng):
        x = rng.normal(size=1024)
        hi, lo = split_n_parts(x, 27, 2)
        err = np.abs(x - hi - lo)
        assert np.all(err <= np.abs(x) * 2.0**-52)

    def test_four_14bit_parts_cover_fp64(self, rng):
        x = rng.normal(size=512)
        parts = split_n_parts(x, 14, 4)
        recon = sum(parts)
        np.testing.assert_allclose(recon, x, rtol=2.0**-52, atol=0)

    def test_part_widths(self, rng):
        x = rng.normal(size=512)
        parts = split_n_parts(x, 14, 4)
        for p in parts:
            assert _sig_bits(p) <= 14

    def test_monotone_weights(self):
        x = np.array([1.9999999999])
        parts = split_n_parts(x, 10, 3)
        mags = [abs(float(p[0])) for p in parts]
        assert mags[0] > mags[1] > mags[2] > 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_n_parts(np.ones(2), 0, 2)


class TestComplexLayout:
    def test_split_complex(self, rng):
        z = rng.normal(size=(4, 6)) + 1j * rng.normal(size=(4, 6))
        re, im = split_complex(z)
        np.testing.assert_array_equal(re + 1j * im, z)

    def test_interleave_roundtrip(self, rng):
        z = rng.normal(size=(8, 4)) + 1j * rng.normal(size=(8, 4))
        flat = interleave_complex(z)
        assert flat.shape == (8, 8)
        np.testing.assert_array_equal(deinterleave_complex(flat), z)

    def test_interleave_layout_convention(self):
        # Section IV-B: "a pair of consecutive elements store a complex
        # number's real and imaginary parts".
        z = np.array([[1 + 2j, 3 + 4j]])
        np.testing.assert_array_equal(interleave_complex(z), [[1, 2, 3, 4]])

    def test_deinterleave_rejects_odd(self):
        with pytest.raises(ValueError):
            deinterleave_complex(np.ones((2, 3)))
