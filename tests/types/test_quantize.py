"""Quantisation correctness, including against native IEEE conversions."""

import numpy as np
import pytest

from repro.types import BF16, FP16, FP32, FP64, TF32, quantize, quantize_complex, representable
from repro.types.quantize import _quantize_generic
from repro.types.rounding import RoundingMode


class TestNativeAgreement:
    """The generic grid-rounding path must agree bit-for-bit with numpy's
    IEEE conversions wherever a native dtype exists."""

    @pytest.mark.parametrize("scale", [1.0, 1e-3, 1e4, 1e-7, 1e30])
    def test_fp32_matches_numpy(self, rng, scale):
        x = rng.normal(size=4096) * scale
        want = x.astype(np.float32).astype(np.float64)
        got = _quantize_generic(x, FP32, RoundingMode.NEAREST_EVEN)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("scale", [1.0, 1e-2, 1e3, 1e-6, 1e-8])
    def test_fp16_matches_numpy(self, rng, scale):
        x = rng.normal(size=4096) * scale
        want = x.astype(np.float16).astype(np.float64)
        got = _quantize_generic(x, FP16, RoundingMode.NEAREST_EVEN)
        np.testing.assert_array_equal(got, want)

    def test_fp16_overflow_to_inf(self):
        x = np.array([70000.0, -70000.0, 65504.0, 65520.0, 65519.9])
        got = quantize(x, FP16)
        want = x.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(got, want)
        assert np.isinf(got[0]) and got[1] == -np.inf

    def test_fp16_subnormal_grid(self):
        # Smallest positive FP16 subnormal is 2^-24; half of it rounds to 0
        # (ties-to-even), slightly more rounds up.
        sub = 2.0**-24
        x = np.array([sub, sub / 2, sub / 2 + 1e-12, sub * 1.499])
        got = quantize(x, FP16)
        np.testing.assert_array_equal(got, [sub, 0.0, sub, sub])

    def test_fp64_identity(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_array_equal(quantize(x, FP64), x)


class TestTies:
    def test_round_half_to_even_fp32(self):
        # 1 + 2^-24 is exactly between 1.0 and 1 + 2^-23: rounds to 1.0 (even).
        assert quantize(1.0 + 2.0**-24, FP32) == 1.0
        # 1 + 3*2^-24 is between 1+2^-23 and 1+2^-22: rounds to 1+2^-22? No:
        # midpoint of (1+2^-23, 1+2^-22)... verify against numpy.
        v = 1.0 + 3.0 * 2.0**-24
        assert quantize(v, FP32) == float(np.float32(v))

    def test_truncation_mode(self):
        v = 1.0 + 2.0**-23 + 2.0**-24  # above the FP32 grid point
        got = quantize(v, FP32, RoundingMode.TOWARD_ZERO)
        assert got == 1.0 + 2.0**-23

    def test_truncation_saturates_instead_of_inf(self):
        got = quantize(np.array([1e39]), FP32, RoundingMode.TOWARD_ZERO)
        assert got[0] == FP32.max_value


class TestCustomFormats:
    def test_tf32_drops_13_bits(self):
        # TF32 keeps 10 explicit mantissa bits of FP32's 23.
        v = float(np.float32(1.2345678))
        q = quantize(v, TF32)
        assert q != v
        assert abs(q - v) <= 2.0**-11  # half ulp at exponent 0
        # Quantised value must sit on the TF32 grid exactly.
        assert q == quantize(q, TF32)

    def test_bf16_values_are_fp32_representable(self, rng):
        x = rng.normal(size=256)
        q = quantize(x, BF16)
        assert np.all(representable(q, FP32))

    def test_specials_flow_through(self):
        x = np.array([np.inf, -np.inf, np.nan, 0.0, -0.0])
        for fmt in (FP16, BF16, TF32, FP32):
            q = quantize(x, fmt)
            assert q[0] == np.inf and q[1] == -np.inf
            assert np.isnan(q[2])
            assert q[3] == 0.0 and np.signbit(q[4])


class TestRepresentable:
    def test_grid_values(self):
        assert representable(1.0, FP16)
        assert representable(1.0 + 2.0**-10, FP16)
        assert not representable(1.0 + 2.0**-11, FP16)

    def test_specials_always_representable(self):
        x = np.array([np.nan, np.inf, -np.inf])
        assert np.all(representable(x, BF16))

    def test_range_overflow_not_representable(self):
        assert not representable(1e10, FP16)


class TestComplex:
    def test_quantize_complex_parts_independent(self, rng):
        z = rng.normal(size=64) + 1j * rng.normal(size=64)
        q = quantize_complex(z, FP32)
        np.testing.assert_array_equal(q.real, quantize(z.real, FP32))
        np.testing.assert_array_equal(q.imag, quantize(z.imag, FP32))

    def test_complex_shape_preserved(self, rng):
        z = (rng.normal(size=(3, 5)) + 1j * rng.normal(size=(3, 5)))
        assert quantize_complex(z, FP16).shape == (3, 5)
