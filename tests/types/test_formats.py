"""Format descriptor behaviour."""

import numpy as np
import pytest

from repro.types import (
    BF16,
    FP16,
    FP32,
    FP64,
    M3XU_IN,
    TENSORCORE_IN,
    TF32,
    FloatFormat,
    format_by_name,
)


class TestFieldWidths:
    def test_fp32_layout(self):
        assert FP32.exponent_bits == 8
        assert FP32.mantissa_bits == 23
        assert FP32.total_bits == 32
        assert FP32.significand_bits == 24

    def test_fp16_layout(self):
        assert (FP16.exponent_bits, FP16.mantissa_bits) == (5, 10)
        assert FP16.total_bits == 16

    def test_bf16_layout(self):
        assert (BF16.exponent_bits, BF16.mantissa_bits) == (8, 7)

    def test_tf32_layout(self):
        # "(1,8,10)" in Table I.
        assert (TF32.exponent_bits, TF32.mantissa_bits) == (8, 10)
        assert TF32.total_bits == 19

    def test_fp64_layout(self):
        assert (FP64.exponent_bits, FP64.mantissa_bits) == (11, 52)

    def test_m3xu_input_has_12_bit_significand(self):
        # Section IV-A: "each buffer entry contains space for the 1-bit
        # sign, 8-bit exponent, and 12 bits of mantissa".
        assert M3XU_IN.significand_bits == 12
        assert M3XU_IN.exponent_bits == 8
        assert M3XU_IN.total_bits == 1 + 8 + 11

    def test_m3xu_is_one_bit_wider_than_tensorcore(self):
        assert M3XU_IN.mantissa_bits == TENSORCORE_IN.mantissa_bits + 1


class TestDerivedValues:
    def test_fp32_bias_and_range(self):
        assert FP32.bias == 127
        assert FP32.emax == 127
        assert FP32.emin == -126
        assert FP32.max_value == float(np.finfo(np.float32).max)
        assert FP32.min_normal == float(np.finfo(np.float32).tiny)
        assert FP32.min_subnormal == float(
            np.finfo(np.float32).smallest_subnormal
        )

    def test_fp16_range(self):
        assert FP16.max_value == 65504.0
        assert FP16.min_normal == 2.0**-14
        assert FP16.min_subnormal == 2.0**-24

    def test_machine_epsilon(self):
        assert FP32.machine_epsilon == 2.0**-23
        assert BF16.machine_epsilon == 2.0**-7

    def test_ulp_at_exponent(self):
        assert FP32.ulp(0) == 2.0**-23
        assert FP32.ulp(10) == 2.0**-13

    def test_bf16_shares_fp32_exponent_range(self):
        assert BF16.emax == FP32.emax
        assert BF16.emin == FP32.emin


class TestRelations:
    def test_contains_reflexive(self):
        for f in (FP16, BF16, TF32, FP32, FP64):
            assert f.contains(f)

    def test_fp32_contains_tf32_and_bf16(self):
        assert FP32.contains(TF32)
        assert FP32.contains(BF16)

    def test_fp32_does_not_contain_fp16_range(self):
        # FP16's 5-bit exponent < FP32's 8-bit: FP32 contains FP16.
        assert FP32.contains(FP16)
        assert not FP16.contains(FP32)

    def test_tf32_does_not_contain_fp16_mantissa_plus_bf16_range(self):
        # TF32 = union of FP16 mantissa and BF16 exponent.
        assert TF32.contains(BF16)
        assert TF32.contains(FP16)


class TestValidation:
    def test_rejects_tiny_exponent(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=1, mantissa_bits=4)

    def test_rejects_zero_mantissa(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=5, mantissa_bits=0)

    def test_rejects_wider_than_fp64(self):
        with pytest.raises(ValueError):
            FloatFormat("fp128ish", exponent_bits=15, mantissa_bits=52)
        with pytest.raises(ValueError):
            FloatFormat("too_wide", exponent_bits=11, mantissa_bits=60)

    def test_lookup_by_name(self):
        assert format_by_name("FP32") is FP32
        assert format_by_name("bf16") is BF16
        with pytest.raises(KeyError):
            format_by_name("fp8")

    def test_with_name(self):
        f = FP32.with_name("custom")
        assert f.name == "custom"
        assert f.mantissa_bits == FP32.mantissa_bits
