"""Integer significand rounding primitives."""

import numpy as np
import pytest

from repro.types import RoundingMode, round_significand, round_significand_scalar


class TestVectorised:
    def test_no_shift_identity(self):
        sig = np.array([0, 1, 5, 1000])
        np.testing.assert_array_equal(
            round_significand(sig, 0, RoundingMode.NEAREST_EVEN), sig
        )

    def test_truncation(self):
        np.testing.assert_array_equal(
            round_significand(np.array([7, 8, 15]), 3, RoundingMode.TOWARD_ZERO),
            [0, 1, 1],
        )

    def test_rne_halfway_cases(self):
        # shift 1: values 1,2,3,4,5 -> 0(tie,even),1,2(tie->2),2,2(tie... )
        got = round_significand(
            np.array([1, 2, 3, 4, 5, 6, 7]), 1, RoundingMode.NEAREST_EVEN
        )
        np.testing.assert_array_equal(got, [0, 1, 2, 2, 2, 3, 4])

    def test_rne_matches_scalar(self, rng):
        sig = rng.integers(0, 1 << 40, size=500)
        for shift in (1, 7, 13):
            vec = round_significand(sig, shift, RoundingMode.NEAREST_EVEN)
            ref = [
                round_significand_scalar(int(s), shift, RoundingMode.NEAREST_EVEN)
                for s in sig
            ]
            np.testing.assert_array_equal(vec, ref)

    def test_huge_shift_rounds_to_zero(self):
        got = round_significand(np.array([123456]), 63, RoundingMode.NEAREST_EVEN)
        assert got[0] == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            round_significand(np.array([-1]), 2, RoundingMode.NEAREST_EVEN)
        with pytest.raises(ValueError):
            round_significand(np.array([1]), -1, RoundingMode.NEAREST_EVEN)


class TestScalar:
    def test_arbitrary_precision(self):
        big = (1 << 200) + (1 << 100)
        got = round_significand_scalar(big, 100, RoundingMode.NEAREST_EVEN)
        assert got == (1 << 100) + 1

    def test_tie_to_even_scalar(self):
        assert round_significand_scalar(6, 2, RoundingMode.NEAREST_EVEN) == 2
        assert round_significand_scalar(10, 2, RoundingMode.NEAREST_EVEN) == 2
        assert round_significand_scalar(11, 2, RoundingMode.NEAREST_EVEN) == 3

    def test_truncate_scalar(self):
        assert round_significand_scalar(11, 2, RoundingMode.TOWARD_ZERO) == 2

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            round_significand_scalar(-5, 1, RoundingMode.NEAREST_EVEN)
        with pytest.raises(ValueError):
            round_significand_scalar(5, -1, RoundingMode.NEAREST_EVEN)
