"""FP8 formats (the Section IV-C 8-bit-multiplier design option)."""

import numpy as np
import pytest

from repro.types import FP8_E4M3, FP8_E5M2, FP32, decode, encode, quantize, representable


class TestLayout:
    def test_e4m3(self):
        assert FP8_E4M3.total_bits == 8
        assert (FP8_E4M3.exponent_bits, FP8_E4M3.mantissa_bits) == (4, 3)

    def test_e5m2(self):
        assert FP8_E5M2.total_bits == 8
        assert (FP8_E5M2.exponent_bits, FP8_E5M2.mantissa_bits) == (5, 2)

    def test_ranges(self):
        # IEEE-style interpretation (inf/nan encodings reserved): E4M3
        # tops out at 240, E5M2 at 57344.
        assert FP8_E4M3.max_value == 240.0
        assert FP8_E5M2.max_value == 57344.0
        assert FP8_E5M2.emin < FP8_E4M3.emin


class TestQuantise:
    def test_grid_coarseness(self, rng):
        x = rng.uniform(1.0, 2.0, size=256)
        q3 = quantize(x, FP8_E4M3)
        q2 = quantize(x, FP8_E5M2)
        # E4M3 resolves eighths in [1,2); E5M2 only quarters.
        assert np.max(np.abs(q3 - x)) <= 2.0**-4 + 1e-12
        assert np.max(np.abs(q2 - x)) <= 2.0**-3 + 1e-12
        assert np.mean(np.abs(q2 - x)) > np.mean(np.abs(q3 - x))

    def test_roundtrip_bits(self, rng):
        q = quantize(rng.normal(size=128) * 4, FP8_E4M3)
        np.testing.assert_array_equal(decode(encode(q, FP8_E4M3), FP8_E4M3), q)

    def test_overflow(self):
        assert quantize(np.array([300.0]), FP8_E4M3)[0] == np.inf
        assert representable(240.0, FP8_E4M3)

    def test_all_e4m3_values_fp32_representable(self):
        # Every FP8 grid value embeds exactly in FP32 (downward support).
        bits = np.arange(256, dtype=np.uint64)
        vals = decode(bits, FP8_E4M3)
        finite = np.isfinite(vals)
        assert np.all(representable(vals[finite], FP32))


class TestCompositionDesignPoint:
    def test_fp32_from_fp8_width_slices(self, rng):
        # Composing FP32 out of 4-bit-significand (E4M3-class) multipliers:
        # 6 slices of 4 bits cover the 24-bit significand.
        from repro.mxu import MultiStepScheme, composed_gemm

        scheme = MultiStepScheme(FP32, 4)
        assert scheme.n_slices == 6
        a = rng.uniform(0.5, 1.5, size=(8, 8))
        b = rng.uniform(0.5, 1.5, size=(8, 8))
        got = composed_gemm(a, b, scheme)
        ref = quantize(a, FP32) @ quantize(b, FP32)
        np.testing.assert_allclose(got, ref, rtol=1e-6)
