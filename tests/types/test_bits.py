"""Bit-level encode/decode round trips and field extraction."""

import numpy as np
import pytest

from repro.types import (
    BF16,
    FP16,
    FP32,
    decode,
    decode_fields,
    encode,
    encode_fields,
    quantize,
)


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", [FP16, BF16, FP32])
    def test_random_values(self, rng, fmt):
        x = quantize(rng.normal(size=2048) * 10.0 ** rng.uniform(-3, 3, 2048), fmt)
        np.testing.assert_array_equal(decode(encode(x, fmt), fmt), x)

    def test_fp32_bits_match_numpy_view(self, rng):
        x = quantize(rng.normal(size=512), FP32)
        ours = encode(x, FP32)
        theirs = x.astype(np.float32).view(np.uint32).astype(np.uint64)
        np.testing.assert_array_equal(ours, theirs)

    def test_fp16_bits_match_numpy_view(self, rng):
        x = quantize(rng.normal(size=512), FP16)
        ours = encode(x, FP16)
        theirs = x.astype(np.float16).view(np.uint16).astype(np.uint64)
        np.testing.assert_array_equal(ours, theirs)

    def test_subnormals_roundtrip(self):
        subs = np.array([2.0**-24, 3 * 2.0**-24, 2.0**-14 - 2.0**-24])
        np.testing.assert_array_equal(decode(encode(subs, FP16), FP16), subs)

    def test_negative_zero(self):
        bits = encode(np.array([-0.0]), FP32)
        assert bits[0] == 1 << 31
        back = decode(bits, FP32)
        assert back[0] == 0.0 and np.signbit(back[0])


class TestSpecials:
    def test_inf_encoding(self):
        bits = encode(np.array([np.inf, -np.inf]), FP32)
        assert bits[0] == 0x7F800000
        assert bits[1] == 0xFF800000

    def test_nan_is_quiet(self):
        bits = encode(np.array([np.nan]), FP32)
        sign, biased, mant = decode_fields(bits, FP32)
        assert biased[0] == 0xFF
        assert mant[0] & (1 << 22)
        assert np.isnan(decode(bits, FP32)[0])


class TestFields:
    def test_decode_fields_of_one(self):
        sign, biased, mant = decode_fields(encode(np.array([1.0]), FP32), FP32)
        assert (sign[0], biased[0], mant[0]) == (0, 127, 0)

    def test_decode_fields_of_minus_1p5(self):
        sign, biased, mant = decode_fields(encode(np.array([-1.5]), FP32), FP32)
        assert sign[0] == 1
        assert biased[0] == 127
        assert mant[0] == 1 << 22

    def test_encode_fields_inverse(self, rng):
        x = quantize(rng.normal(size=256), FP32)
        bits = encode(x, FP32)
        np.testing.assert_array_equal(
            encode_fields(*decode_fields(bits, FP32), FP32), bits
        )

    def test_encode_fields_rejects_overflow(self):
        with pytest.raises(ValueError):
            encode_fields(np.array([0]), np.array([0]), np.array([1 << 23]), FP32)
        with pytest.raises(ValueError):
            encode_fields(np.array([0]), np.array([256]), np.array([0]), FP32)


class TestErrors:
    def test_encode_rejects_unrepresentable(self):
        with pytest.raises(ValueError):
            encode(np.array([1.0 + 2.0**-30]), FP16)
