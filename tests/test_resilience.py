"""The resilience subsystem: ABFT guards, campaigns, checkpoint/resume."""

from __future__ import annotations

import hashlib
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.gemm.batched import batched_mxu_sgemm
from repro.gemm.tiled import TiledGEMM, mxu_sgemm
from repro.mxu.faults import FaultSpec, FaultStage, FaultyM3XU
from repro.mxu.m3xu import M3XU
from repro.mxu.modes import MXUMode
from repro.resilience import (
    AbftConfig,
    AbftUncorrectedError,
    CheckpointJournal,
    resolve_abft,
    sdc_threshold,
)
from repro.resilience.campaign import CampaignConfig, Outcome, run_campaign

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def operands(rng):
    return rng.uniform(-2.0, 2.0, size=(24, 24)), rng.uniform(-2.0, 2.0, size=(24, 20))


# ----------------------------------------------------------------------
# ABFT guard
# ----------------------------------------------------------------------
class TestAbftGuard:
    def test_guarded_run_bit_identical_every_mode(self, operands):
        a, b = operands
        for mode in (MXUMode.FP32, MXUMode.FP64, MXUMode.FP16,
                     MXUMode.BF16, MXUMode.TF32):
            plain = TiledGEMM(M3XU(), mode).run(a, b)
            guard = TiledGEMM(M3XU(), mode, abft=True,
                              abft_config=AbftConfig(tile=8))
            np.testing.assert_array_equal(guard.run(a, b), plain)
            assert guard.abft_report is not None
            assert not guard.abft_report.detected  # zero false alarms

    def test_guarded_run_bit_identical_complex(self, operands):
        a, b = operands
        ac, bc = a + 1j * a[::-1], b - 1j * b[::-1]
        plain = TiledGEMM(M3XU(), MXUMode.FP32C).run(ac, bc)
        guard = TiledGEMM(M3XU(), MXUMode.FP32C, abft=True,
                          abft_config=AbftConfig(tile=8))
        np.testing.assert_array_equal(guard.run(ac, bc), plain)

    def test_env_gate(self, operands, monkeypatch):
        a, b = operands
        monkeypatch.setenv("REPRO_ABFT", "1")
        assert resolve_abft() and resolve_abft(None)
        driver = TiledGEMM(M3XU(), MXUMode.FP32)
        driver.run(a, b)
        assert driver.abft_report is not None  # guard engaged via env
        monkeypatch.setenv("REPRO_ABFT", "0")
        assert not resolve_abft()
        assert resolve_abft(True)  # explicit flag beats the env

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(FaultStage.SIGN_FLIP, call_index=0, element=(3, 4)),
            FaultSpec(FaultStage.SHIFT_ALIGN, call_index=1, element=(0, 0), shift=6),
            FaultSpec(FaultStage.ACCUMULATOR, call_index=0, element=(5, 1), bit=30),
            FaultSpec(FaultStage.OPERAND, call_index=0, element=(2, 3), seed=9),
        ],
        ids=lambda s: s.stage.value,
    )
    def test_inject_detect_recover(self, operands, spec):
        """The tentpole demonstration: a transient fault at each datapath
        stage is detected, localised, and healed — the guarded output is
        bit-identical to a fault-free run."""
        a, b = operands
        clean = TiledGEMM(M3XU(), MXUMode.FP32).run(a, b)
        unit = FaultyM3XU(spec, M3XU())
        guard = TiledGEMM(unit, MXUMode.FP32, abft=True,
                          abft_config=AbftConfig(tile=8))
        out = guard.run(a, b)
        report = guard.abft_report
        assert report.detected, "the injected fault must trip a checksum"
        assert report.recomputed_tiles >= 1
        np.testing.assert_array_equal(out, clean)

    def test_detection_localises_the_tile(self, operands):
        a, b = operands
        spec = FaultSpec(FaultStage.SIGN_FLIP, call_index=0, element=(13, 17))
        unit = FaultyM3XU(spec, M3XU())
        guard = TiledGEMM(unit, MXUMode.FP32, abft=True,
                          abft_config=AbftConfig(tile=8))
        guard.run(a, b)
        tiles = {d.tile for d in guard.abft_report.detections}
        assert (13 // 8, 17 // 8) in tiles
        rows = {r for d in guard.abft_report.detections for r in d.rows}
        cols = {c for d in guard.abft_report.detections for c in d.cols}
        assert 13 in rows and 17 in cols

    def test_nan_corruption_is_detected(self, operands):
        a, b = operands

        class NaNOnce:
            def __init__(self):
                self.unit = M3XU()
                self.config = self.unit.config
                self.fired = False

            def mma_parts(self, *args, **kwargs):
                out = self.unit.mma_parts(*args, **kwargs)
                if not self.fired:
                    self.fired = True
                    out = np.array(out, copy=True)
                    out[0, 0] = np.nan
                return out

        guard = TiledGEMM(NaNOnce(), MXUMode.FP32, k_chunk=4, abft=True,
                          abft_config=AbftConfig(tile=8))
        clean = TiledGEMM(M3XU(), MXUMode.FP32, k_chunk=4).run(a, b)
        np.testing.assert_array_equal(guard.run(a, b), clean)
        assert guard.abft_report.detected

    def test_persistent_fault_raises_not_corrupts(self, operands):
        a, b = operands

        class AlwaysBad:
            """A stuck-at fault: every MMA corrupts the same element."""

            def __init__(self):
                self.unit = M3XU()
                self.config = self.unit.config

            def mma_parts(self, *args, **kwargs):
                out = np.array(self.unit.mma_parts(*args, **kwargs), copy=True)
                out[2, 2] = -out[2, 2] + 7.0
                return out

        guard = TiledGEMM(AlwaysBad(), MXUMode.FP32, k_chunk=4, abft=True,
                          abft_config=AbftConfig(tile=8, max_rounds=2))
        with pytest.raises(AbftUncorrectedError) as err:
            guard.run(a, b)
        assert err.value.report.recompute_rounds == 2
        assert guard.abft_report is err.value.report

    def test_batched_guard_bit_identical_and_correcting(self, rng):
        a = rng.uniform(-1.0, 1.0, size=(4, 16, 12))
        b = rng.uniform(-1.0, 1.0, size=(4, 12, 10))
        plain = batched_mxu_sgemm(a, b)
        np.testing.assert_array_equal(batched_mxu_sgemm(a, b, abft=True), plain)
        spec = FaultSpec(FaultStage.SIGN_FLIP, call_index=1, element=(2, 3, 4))
        bad_unit = FaultyM3XU(spec, M3XU())
        healed = batched_mxu_sgemm(a, b, mxu=bad_unit, abft=True)
        np.testing.assert_array_equal(healed, plain)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_batched_guard_faulty_unit_collapses_to_serial(self, rng, workers):
        # The one-shot fault wrapper is stateful: a batch fan-out would run
        # a pickled copy per worker, firing the fault once per slice against
        # slice-local (out-of-range) indices. requires_serial keeps it on
        # the serial path, so workers>1 behaves exactly like serial.
        a = rng.uniform(-1.0, 1.0, size=(4, 16, 12))
        b = rng.uniform(-1.0, 1.0, size=(4, 12, 10))
        plain = batched_mxu_sgemm(a, b)
        spec = FaultSpec(FaultStage.SIGN_FLIP, call_index=1, element=(2, 3, 4))
        bad_unit = FaultyM3XU(spec, M3XU())
        healed = batched_mxu_sgemm(a, b, mxu=bad_unit, abft=True, workers=workers)
        np.testing.assert_array_equal(healed, plain)
        assert bad_unit.fired

    def test_sdc_threshold_shape_and_positivity(self, operands):
        a, b = operands
        thr = sdc_threshold(a, b, np.zeros((24, 20)), 2.0**-23,
                            AbftConfig(tile=8))
        assert thr.shape == (24, 20)
        assert np.all(thr > 0)


# ----------------------------------------------------------------------
# Fault-injection campaign
# ----------------------------------------------------------------------
class TestCampaign:
    def test_200_trials_zero_undetected_sdc(self):
        """The acceptance criterion: >= 200 randomized single-fault trials
        across every datapath stage, none escaping the guard silently."""
        result = run_campaign(CampaignConfig(trials=200, seed=31))
        assert len(result.records) == 200
        assert result.undetected_sdc == 0
        assert {r.stage for r in result.records} == {
            "operand", "accumulator", "shift_align", "sign_flip"
        }
        counts = result.counts
        assert counts["sdc"] == 0 and counts["detected_uncorrected"] == 0
        # the campaign is not vacuous: plenty of faults were big enough
        # to need detection + correction
        assert counts["detected_corrected"] >= 50

    def test_complex_mode_campaign(self):
        result = run_campaign(CampaignConfig(trials=60, seed=5, mode="fp32c"))
        assert result.undetected_sdc == 0
        assert len(result.records) == 60

    def test_deterministic_for_a_seed(self):
        cfg = CampaignConfig(trials=16, seed=77)
        assert run_campaign(cfg).records == run_campaign(cfg).records

    def test_summary_and_render(self):
        result = run_campaign(CampaignConfig(trials=8, seed=1))
        summary = result.summary()
        assert summary["trials"] == 8
        assert sum(summary["counts"].values()) == 8
        text = result.render()
        assert "undetected SDC events: 0" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(mode="fp16")
        with pytest.raises(ValueError):
            CampaignConfig(stages=())


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
class TestCheckpointJournal:
    def test_round_trip(self, tmp_path, rng):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        payload = {"arr": rng.normal(size=(6, 6)), "n": 3}
        journal.append("exp", "key123", payload)
        loaded = journal.load()
        assert set(loaded) == {"exp"}
        key, value = loaded["exp"]
        assert key == "key123"
        np.testing.assert_array_equal(value["arr"], payload["arr"])
        assert journal.skipped_lines == 0

    def test_later_entries_win(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.append("exp", "k", "old")
        journal.append("exp", "k", "new")
        assert journal.load()["exp"] == ("k", "new")

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.append("a", "ka", 1)
        journal.append("b", "kb", 2)
        text = journal.path.read_text()
        journal.path.write_text(text + text.splitlines()[0][:37])  # torn line
        loaded = journal.load()
        assert set(loaded) == {"a", "b"}
        assert journal.skipped_lines == 1

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        import json

        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.append("a", "ka", [1, 2])
        record = json.loads(journal.path.read_text())
        record["sha256"] = "0" * 64
        journal.path.write_text(json.dumps(record) + "\n")
        assert journal.load() == {}
        assert journal.skipped_lines == 1

    def test_resolve(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert CheckpointJournal.resolve() is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        journal = CheckpointJournal.resolve()
        assert journal.path == tmp_path / "run_all.jsonl"
        explicit = CheckpointJournal.resolve(tmp_path / "x.jsonl")
        assert explicit.path == tmp_path / "x.jsonl"
        assert CheckpointJournal.resolve(journal) is journal

    def test_clear(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.clear()  # absent: no-op
        journal.append("a", "k", 1)
        journal.clear()
        assert not journal.path.exists() and journal.load() == {}

    def test_append_creates_missing_parent_dirs(self, tmp_path):
        # Regression: a journal pointed at a not-yet-existing directory
        # (fresh checkpoint root, first run) must create it instead of
        # failing the first append.
        journal = CheckpointJournal(tmp_path / "deep" / "nested" / "j.jsonl")
        journal.append("exp", "k", {"x": 1})
        assert journal.path.is_file()
        assert journal.load()["exp"] == ("k", {"x": 1})

    def test_rotate_retires_journal_to_numbered_sibling(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        assert journal.rotate() is None  # nothing to rotate
        journal.append("a", "k", 1)
        first = journal.rotate()
        assert first == tmp_path / "j.jsonl.1"
        assert first.is_file() and not journal.path.exists()
        # The live path is immediately reusable and rotation never
        # clobbers an earlier generation.
        journal.append("b", "k", 2)
        second = journal.rotate()
        assert second == tmp_path / "j.jsonl.2"
        assert first.is_file() and second.is_file()
        assert CheckpointJournal(first).load() == {"a": ("k", 1)}
        assert CheckpointJournal(second).load() == {"b": ("k", 2)}

    def test_rotate_skips_occupied_generation_numbers(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        (tmp_path / "j.jsonl.1").write_text("occupied\n")
        journal.append("a", "k", 1)
        assert journal.rotate() == tmp_path / "j.jsonl.2"
        assert (tmp_path / "j.jsonl.1").read_text() == "occupied\n"


# ----------------------------------------------------------------------
# run_all killed mid-flight, then resumed
# ----------------------------------------------------------------------
_RESUME_SCRIPT = '''
import hashlib, os, pathlib, pickle, sys
import numpy as np

sys.path.insert(0, {src!r})
from repro.eval import runner
from repro.gemm.tiled import mxu_sgemm

ROOT = pathlib.Path({root!r})


def _mark(name):
    p = ROOT / ("ran-" + name)
    p.write_text(str(int(p.read_text()) + 1) if p.exists() else "1")


def _gemm(seed):
    rng = np.random.default_rng(seed)
    return mxu_sgemm(rng.uniform(-1, 1, (12, 8)), rng.uniform(-1, 1, (8, 10)))


def exp_alpha():
    _mark("alpha")
    return _gemm(0)


def exp_beta():
    _mark("beta")
    return {{"beta": _gemm(1)}}


def exp_gamma():
    _mark("gamma")
    if os.environ.get("RESILIENCE_CRASH") == "1":
        os._exit(9)  # simulated hard kill mid-sweep: no teardown runs
    return _gemm(2)


def exp_delta():
    _mark("delta")
    return [3, _gemm(3)]


runner.ALL_EXPERIMENTS.clear()
for name, fn in [("alpha", exp_alpha), ("beta", exp_beta),
                 ("gamma", exp_gamma), ("delta", exp_delta)]:
    runner.register_experiment(name, fn)

results = runner.run_all(
    workers=1,
    use_cache=False,
    checkpoint=str(ROOT / "ckpt"),
    resume=os.environ.get("RESILIENCE_RESUME") == "1",
)
# One digest per experiment: per-value pickles are canonical, whereas a
# pickle of the whole dict also encodes memoised structure sharing that
# legitimately differs between freshly computed and journal-replayed runs.
for name in sorted(results):
    print(name, hashlib.sha256(pickle.dumps(results[name])).hexdigest())
'''


class TestRunAllResume:
    def _run(self, script, tmp_path, crash, resume):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["RESILIENCE_CRASH"] = "1" if crash else "0"
        env["RESILIENCE_RESUME"] = "1" if resume else "0"
        env.pop("REPRO_WORKERS", None)
        env.pop("REPRO_CHECKPOINT_DIR", None)
        return subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_killed_sweep_resumes_bit_identical(self, tmp_path):
        script = tmp_path / "sweep.py"
        script.write_text(_RESUME_SCRIPT.format(src=SRC, root=str(tmp_path)))

        crashed = self._run(script, tmp_path, crash=True, resume=False)
        assert crashed.returncode == 9, crashed.stderr
        journal = CheckpointJournal(tmp_path / "ckpt" / "run_all.jsonl")
        assert set(journal.load()) == {"alpha", "beta"}  # durable progress

        resumed = self._run(script, tmp_path, crash=False, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        # alpha/beta were replayed from the journal, not recomputed
        assert (tmp_path / "ran-alpha").read_text() == "1"
        assert (tmp_path / "ran-beta").read_text() == "1"
        assert (tmp_path / "ran-delta").read_text() == "1"

        # a fresh uninterrupted sweep produces bit-identical results
        clean_root = tmp_path / "clean"
        clean_root.mkdir()
        clean_script = clean_root / "sweep.py"
        clean_script.write_text(
            _RESUME_SCRIPT.format(src=SRC, root=str(clean_root))
        )
        reference = self._run(clean_script, tmp_path, crash=False, resume=False)
        assert reference.returncode == 0, reference.stderr
        assert resumed.stdout.strip() == reference.stdout.strip()

    def test_resume_without_journal_recomputes_everything(self, tmp_path):
        script = tmp_path / "sweep.py"
        script.write_text(_RESUME_SCRIPT.format(src=SRC, root=str(tmp_path)))
        done = self._run(script, tmp_path, crash=False, resume=True)
        assert done.returncode == 0, done.stderr
        for name in ("alpha", "beta", "gamma", "delta"):
            assert (tmp_path / f"ran-{name}").read_text() == "1"


def test_sha256_is_the_hash_used_by_the_journal(tmp_path):
    # guards against silent hash swaps that would invalidate old journals
    journal = CheckpointJournal(tmp_path / "j.jsonl")
    journal.append("x", "k", b"payload")
    import base64
    import json

    record = json.loads(journal.path.read_text())
    blob = base64.b64decode(record["blob"])
    assert hashlib.sha256(blob).hexdigest() == record["sha256"]


class TestJitterDeterminism:
    """Regression: retry-backoff jitter must be seeded (lint rule DT203).

    The jitter RNG used to be ``Random()`` — OS entropy — which made
    failure-schedule timing unreplayable. ``RetryPolicy.jitter_rng()``
    now derives from an explicit seed threaded like every other random
    source in the repo.
    """

    def test_jitter_rng_replays_bit_identically(self):
        from repro.resilience.failures import RetryPolicy

        policy = RetryPolicy(retries=3, backoff=0.5)
        a, b = policy.jitter_rng(), policy.jitter_rng()
        delays_a = [policy.delay(k, a) for k in range(1, 6)]
        delays_b = [policy.delay(k, b) for k in range(1, 6)]
        assert delays_a == delays_b

    def test_distinct_seeds_give_distinct_schedules(self):
        from repro.resilience.failures import RetryPolicy

        base = RetryPolicy(retries=3, backoff=0.5)
        other = RetryPolicy(retries=3, backoff=0.5, seed=7)
        da = [base.delay(k, base.jitter_rng()) for k in (1, 2)]
        db = [other.delay(k, other.jitter_rng()) for k in (1, 2)]
        assert da != db

    def test_resolve_policy_threads_seed(self):
        from repro.resilience.failures import resolve_policy

        assert resolve_policy(retries=2).seed == resolve_policy(retries=2).seed
        assert resolve_policy(retries=2, seed=99).seed == 99

    def test_delay_bounds_hold(self):
        from repro.resilience.failures import MAX_BACKOFF, RetryPolicy

        policy = RetryPolicy(retries=5, backoff=0.25, jitter=0.25)
        rng = policy.jitter_rng()
        for attempt in range(1, 10):
            d = policy.delay(attempt, rng)
            base = min(0.25 * 2.0 ** (attempt - 1), MAX_BACKOFF)
            assert base <= d <= base * 1.25
